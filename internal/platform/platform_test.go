package platform

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIMECDatasheetConstants(t *testing.T) {
	p := IMEC()
	// Values printed in the paper (§3.1, §4.1, §4.2, §5).
	if p.MCU.ActiveA != 2e-3 || p.MCU.PowerSaveA != 0.66e-3 || p.MCU.VoltageV != 2.8 {
		t.Fatalf("MCU electrical constants diverge from the paper: %+v", p.MCU)
	}
	if p.MCU.WakeupLatency != 6*sim.Microsecond {
		t.Fatalf("MCU wakeup = %v, paper says 6us", p.MCU.WakeupLatency)
	}
	if p.Radio.TxA != 17.54e-3 || p.Radio.RxA != 24.82e-3 || p.Radio.VoltageV != 2.8 {
		t.Fatalf("radio electrical constants diverge from the paper: %+v", p.Radio)
	}
	if p.Radio.StandbyA >= 100e-6 {
		t.Fatalf("standby current %v above the paper's 100uA measurement floor", p.Radio.StandbyA)
	}
	if !approx(p.ASIC.PowerW, 10.5e-3, 1e-12) || p.ASIC.Channels != 25 {
		t.Fatalf("ASIC constants diverge from the paper: %+v", p.ASIC)
	}
	if p.MAC.DynamicSlotDuration != 10*sim.Millisecond {
		t.Fatalf("dynamic slot = %v, paper uses 10ms", p.MAC.DynamicSlotDuration)
	}
	if p.MAC.MaxStaticSlots != 5 {
		t.Fatalf("static slots = %d, case study uses a 5-node BAN", p.MAC.MaxStaticSlots)
	}
}

func TestCyclesToTime(t *testing.T) {
	m := MCUParams{ClockHz: 8e6}
	if got := m.CyclesToTime(8000); got != sim.Millisecond {
		t.Fatalf("8000 cycles at 8MHz = %v, want 1ms", got)
	}
	if got := m.CyclesToTime(0); got != 0 {
		t.Fatalf("0 cycles = %v, want 0", got)
	}
	if got := m.CyclesToTime(-5); got != 0 {
		t.Fatalf("negative cycles = %v, want 0", got)
	}
}

func TestAirtime(t *testing.T) {
	r := IMEC().Radio
	// 18B payload + 1+3+2 overhead = 24B = 192 bits at 1Mbps = 192us.
	if got := r.Airtime(18); got != 192*sim.Microsecond {
		t.Fatalf("Airtime(18) = %v, want 192us", got)
	}
	if r.FrameOverheadBytes() != 6 {
		t.Fatalf("frame overhead = %d, want 6", r.FrameOverheadBytes())
	}
}

func TestFIFOTimings(t *testing.T) {
	r := IMEC().Radio
	// 24 bytes at 50kbps clock-in = 3.84ms: the ShockBurst low-rate load
	// that dominates the per-packet MCU cost.
	if got := r.TxClockIn(24); got != 3840*sim.Microsecond {
		t.Fatalf("TxClockIn(24) = %v, want 3.84ms", got)
	}
	// 8-byte beacon payload at 100kbps clock-out = 640us of RX tail.
	if got := r.RxClockOut(8); got != 640*sim.Microsecond {
		t.Fatalf("RxClockOut(8) = %v, want 640us", got)
	}
}

func TestCalibratedStaticBeaconWindow(t *testing.T) {
	// The calibration target from DESIGN.md §5: the static beacon listen
	// window (settle + guard + airtime + payload clock-out) should cost
	// ≈ 0.22 mJ at RX power, i.e. ≈ 3.17 ms receiver-on.
	p := IMEC()
	window := p.Radio.RxSettle + p.MAC.StaticGuard +
		p.Radio.Airtime(p.MAC.BeaconBasePayloadBytes) +
		p.Radio.RxClockOut(p.MAC.BeaconBasePayloadBytes)
	ms := window.Seconds() * 1e3
	if ms < 3.0 || ms > 3.4 {
		t.Fatalf("static beacon window = %.3f ms, calibration target ~3.17 ms", ms)
	}
	mj := p.Radio.RxA * p.Radio.VoltageV * window.Seconds() * 1e3
	if mj < 0.20 || mj > 0.24 {
		t.Fatalf("static beacon window energy = %.4f mJ, target ~0.22", mj)
	}
}

func TestCalibratedPacketCost(t *testing.T) {
	// A data packet (18B payload) should cost ≈ 49 µJ of radio energy:
	// TX settle + airtime at TX power, RX settle + ack wait + ack
	// airtime + ack clock-out at RX power.
	p := IMEC()
	bs := BaseStation()
	txTime := p.Radio.TxSettle + p.Radio.Airtime(18)
	// Base-station turnaround from the node frame's end to the ack's end:
	// drain data FIFO, interrupt-context ack queueing, load ack FIFO,
	// settle, ack airtime.
	ackLatency := bs.Radio.RxClockOut(18) +
		bs.MCU.CyclesToTime(bs.Cost.BSAckTurnaround) +
		bs.Radio.TxClockIn(bs.Radio.AddressBytes+p.MAC.AckPayloadBytes) +
		bs.Radio.TxSettle + bs.Radio.Airtime(p.MAC.AckPayloadBytes)
	// Node receiver-on time: from its frame end until the ack is drained.
	rxTime := ackLatency + p.Radio.RxClockOut(p.MAC.AckPayloadBytes)
	uj := (p.Radio.TxA*txTime.Seconds() + p.Radio.RxA*rxTime.Seconds()) * p.Radio.VoltageV * 1e6
	if uj < 44 || uj > 55 {
		t.Fatalf("per-packet radio cost = %.1f uJ, calibration target ~49", uj)
	}
	// The ack must arrive well inside the node's timeout.
	if ackLatency >= p.MAC.AckTimeout {
		t.Fatalf("ack latency %v exceeds node timeout %v", ackLatency, p.MAC.AckTimeout)
	}
}

func TestCalibratedMCUCycleCosts(t *testing.T) {
	p := IMEC()
	// 2.24ms static beacon handling at 8MHz.
	if got := p.MCU.CyclesToTime(p.Cost.BeaconParseStatic).Milliseconds(); !approx(got, 2.24, 0.03) {
		t.Fatalf("static beacon parse = %.3f ms, target 2.24", got)
	}
	// Streaming sample pair 60us.
	if got := p.MCU.CyclesToTime(p.Cost.SamplePairStreaming).Micros(); !approx(got, 60, 1) {
		t.Fatalf("sample pair = %.1f us, target 60", got)
	}
	// Rpeak detector 154us/channel-sample.
	if got := p.MCU.CyclesToTime(p.Cost.RpeakPerChannelSample).Micros(); !approx(got, 154, 2) {
		t.Fatalf("rpeak sample = %.1f us, target ~154", got)
	}
}

func TestAtClock(t *testing.T) {
	m := IMEC().MCU
	// The anchor point reproduces itself.
	if got := m.AtClock(8e6); !approx(got.ActiveA, 2e-3, 1e-9) {
		t.Fatalf("AtClock(8MHz) active = %v, want 2mA", got.ActiveA)
	}
	// At 1 MHz the dynamic part shrinks 8x; leakage remains.
	low := m.AtClock(1e6)
	want := 0.12e-3 + (2e-3-0.12e-3)/8
	if !approx(low.ActiveA, want, 1e-9) {
		t.Fatalf("AtClock(1MHz) active = %v, want %v", low.ActiveA, want)
	}
	// Computation slows proportionally.
	if low.CyclesToTime(8000) != 8*sim.Millisecond {
		t.Fatalf("8000 cycles at 1MHz = %v, want 8ms", low.CyclesToTime(8000))
	}
	// The power-save floor is clock-independent.
	if low.PowerSaveA != m.PowerSaveA {
		t.Fatalf("power-save current changed with clock")
	}
	// Energy per cycle falls with frequency (leakage amortisation is
	// negative here: the LPM floor dominates, so slower clocks spend
	// LESS energy per unit work while awake longer).
	eHi := m.ActiveA / m.ClockHz
	eLo := low.ActiveA / low.ClockHz
	if eLo <= eHi {
		t.Fatalf("per-cycle charge should rise at low clock: %v vs %v", eLo, eHi)
	}
}

func TestAtClockRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("zero clock did not panic")
		}
	}()
	IMEC().MCU.AtClock(0)
}

func TestMaxPayloadFitsFIFO(t *testing.T) {
	r := IMEC().Radio
	// nRF2401 ShockBurst frame (address+payload+CRC) must fit the
	// 256-bit FIFO; preamble is generated on the fly.
	totalBits := 8 * (r.AddressBytes + r.MaxPayloadBytes + r.CRCBytes)
	if totalBits > 256 {
		t.Fatalf("max frame %d bits exceeds the 256-bit ShockBurst FIFO", totalBits)
	}
}
