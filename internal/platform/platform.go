// Package platform collects the electrical and timing parameters of the
// sensor-node hardware the paper builds on: the TI MSP430F149
// microcontroller, the Nordic nRF2401 transceiver and the IMEC 25-channel
// biopotential ASIC, plus the calibrated activity cost model that plays
// the role PowerTOSSIM's basic-block mapping plays in the original
// framework.
//
// Datasheet/paper constants (§3.1, §4.1, §4.2 of the paper):
//   - MSP430F149: 2 mA active / 0.66 mA power-save at 2.8 V, 6 µs wakeup,
//     0.6 nJ/instruction, 8 MHz maximum clock.
//   - nRF2401: 17.54 mA TX / 24.82 mA RX at 2.8 V (measured), standby
//     below the paper's 100 µA measurement floor, 1 Mbps on-air rate,
//     ShockBurst FIFO with low-rate clock-in.
//   - 25-ch ASIC: constant 10.5 mW at 3.0 V.
//
// Calibrated constants (guard windows, FIFO clock rates, per-activity
// cycle counts) are recovered by fitting the paper's published tables,
// exactly as the authors calibrated against their measurement setup. The
// derivations are in DESIGN.md §5 and EXPERIMENTS.md.
package platform

import "repro/internal/sim"

// MCUParams describes the microcontroller's electrical operating points
// and clocking.
type MCUParams struct {
	// VoltageV is the supply voltage.
	VoltageV float64
	// ActiveA is the current drawn while executing instructions.
	ActiveA float64
	// PowerSaveA is the current drawn in the power-save mode the TinyOS
	// scheduler selects during inactive periods (the paper: only the
	// first low-power mode is used for these applications).
	PowerSaveA float64
	// DeepModesA are the currents of the remaining low-power modes
	// (LPM1..LPM4 equivalents, completing the paper's "5 available power
	// save modes"); the scheduler does not enter them for the paper's
	// workloads, which always select the first mode.
	DeepModesA [4]float64
	// ClockHz is the CPU clock. The paper runs the MCU at maximum speed
	// because of the ASIC's timing requirements.
	ClockHz float64
	// WakeupLatency is the stand-by to active transition time.
	WakeupLatency sim.Time
}

// CyclesToTime converts an instruction-cycle count into execution time at
// the MCU clock.
func (m MCUParams) CyclesToTime(cycles int64) sim.Time {
	if cycles <= 0 {
		return 0
	}
	return sim.Time(float64(cycles) / m.ClockHz * float64(sim.Second))
}

// Datasheet/measured operating points (§3.1, §4.1 of the paper), named
// with their unit as banlint's unitconst analyzer requires: every
// electrical quantity that reaches a platform API carries its
// provenance and unit in its name instead of appearing as a bare
// number at the use site.
const (
	// MSP430F149 on the 2.8 V rail.
	mcuSupplyVoltageV    = 2.8
	mcuActiveCurrentA    = 2e-3
	mcuPowerSaveCurrentA = 0.66e-3
	// The remaining low-power modes (LPM1..LPM4 equivalents).
	mcuLPM1CurrentA = 75e-6
	mcuLPM2CurrentA = 22e-6
	mcuLPM3CurrentA = 17e-6
	mcuLPM4CurrentA = 0.1e-6

	// nRF2401 measured at 2.8 V; standby sits below the paper's
	// 100 µA measurement floor.
	radioSupplyVoltageV  = 2.8
	radioTxCurrentA      = 17.54e-3
	radioRxCurrentA      = 24.82e-3
	radioStandbyCurrentA = 12e-6

	// IMEC 25-channel biopotential ASIC: constant draw at 3.0 V.
	asicSupplyVoltageV = 3.0
	asicPowerW         = 10.5e-3
)

// mcuLeakageA is the frequency-independent part of the active current;
// the rest scales linearly with the clock (CMOS dynamic power). The
// split is anchored so that the paper's measured 2 mA at the 8 MHz
// maximum is reproduced exactly.
const mcuLeakageA = 0.12e-3

// AtClock derives the parameters for running the MSP430 at a different
// core clock on the same 2.8 V rail: the active current scales with
// frequency (I = leakage + k·f), computation takes proportionally
// longer, and the low-power-mode floor is unchanged. This is the tuning
// knob the paper notes it could NOT use — the 25-channel ASIC's timing
// requirements forced the maximum clock (§5.1) — and the clock-scaling
// ablation quantifies what that constraint costs.
func (m MCUParams) AtClock(clockHz float64) MCUParams {
	if clockHz <= 0 {
		panic("platform: clock must be positive")
	}
	perHz := (m.ActiveA - mcuLeakageA) / m.ClockHz
	out := m
	out.ClockHz = clockHz
	out.ActiveA = mcuLeakageA + perHz*clockHz
	return out
}

// RadioParams describes the transceiver's electrical operating points,
// framing and timing.
type RadioParams struct {
	// VoltageV is the supply voltage.
	VoltageV float64
	// TxA, RxA, StandbyA are the per-state currents. Off draws nothing.
	TxA      float64
	RxA      float64
	StandbyA float64
	// BitrateHz is the on-air ShockBurst burst rate.
	BitrateHz float64
	// PreambleBytes, AddressBytes, CRCBytes define the frame overhead
	// around the payload.
	PreambleBytes int
	AddressBytes  int
	CRCBytes      int
	// MaxPayloadBytes is the largest payload one ShockBurst frame can
	// carry (the nRF2401 FIFO is 256 bits total).
	MaxPayloadBytes int
	// TxSettle and RxSettle are the PLL settling times before the radio
	// can transmit or receive; current during settling is the target
	// mode's current.
	TxSettle sim.Time
	RxSettle sim.Time
	// TxFIFOClockInHz is the rate at which the MCU clocks payload bytes
	// into the TX FIFO (the "low data rate" side of ShockBurst). The MCU
	// is busy (programmed I/O) for the duration; the radio sits in
	// standby.
	TxFIFOClockInHz float64
	// RxFIFOClockOutHz is the rate at which received payload bytes are
	// clocked out of the RX FIFO. The transfer is interrupt-driven
	// byte-by-byte, so the MCU naps between bytes, but the radio stays
	// in RX until the FIFO is drained.
	RxFIFOClockOutHz float64
	// PerByteISRCycles is the MCU cost of each RX FIFO byte interrupt.
	PerByteISRCycles int64
}

// FrameOverheadBytes reports the non-payload bytes of every frame.
func (r RadioParams) FrameOverheadBytes() int {
	return r.PreambleBytes + r.AddressBytes + r.CRCBytes
}

// Airtime reports the on-air duration of a frame with the given payload
// length.
func (r RadioParams) Airtime(payloadBytes int) sim.Time {
	bits := float64(8 * (payloadBytes + r.FrameOverheadBytes()))
	return sim.Time(bits / r.BitrateHz * float64(sim.Second))
}

// TxClockIn reports how long the MCU takes to load payloadBytes plus
// header bytes into the TX FIFO.
func (r RadioParams) TxClockIn(payloadBytes int) sim.Time {
	bits := float64(8 * payloadBytes)
	return sim.Time(bits / r.TxFIFOClockInHz * float64(sim.Second))
}

// RxClockOut reports how long draining payloadBytes from the RX FIFO
// keeps the radio in RX after the frame ends.
func (r RadioParams) RxClockOut(payloadBytes int) sim.Time {
	bits := float64(8 * payloadBytes)
	return sim.Time(bits / r.RxFIFOClockOutHz * float64(sim.Second))
}

// ASICParams describes the biopotential front-end.
type ASICParams struct {
	// PowerW is the constant power draw while enabled.
	PowerW float64
	// VoltageV is the supply voltage.
	VoltageV float64
	// Channels is the number of acquisition channels.
	Channels int
	// ADCBits is the sample resolution.
	ADCBits int
}

// MACParams holds the TDMA protocol timing shared by both MAC variants.
type MACParams struct {
	// StaticGuard is how long before the expected beacon a node in a
	// static-TDMA network enables its receiver (drift margin + settle
	// margin, calibrated).
	StaticGuard sim.Time
	// DynamicGuard is the same margin for the dynamic TDMA.
	DynamicGuard sim.Time
	// Turnaround is the RX<->TX mode switch time at the protocol level
	// (FIFO handover; PLL settling is accounted separately).
	Turnaround sim.Time
	// AckTimeout is how long after its data frame ends a transmitter
	// keeps the receiver on before concluding the acknowledgement was
	// lost.
	AckTimeout sim.Time
	// AckPayloadBytes is the ACK frame payload length.
	AckPayloadBytes int
	// BeaconBasePayloadBytes is the beacon payload before any dynamic
	// slot-table entries.
	BeaconBasePayloadBytes int
	// SlotEntryBytes is the per-assigned-slot addition to the dynamic
	// beacon payload (node id + slot index).
	SlotEntryBytes int
	// DynamicSlotDuration is the fixed per-node slot length of the
	// dynamic TDMA (the paper: 10 ms).
	DynamicSlotDuration sim.Time
	// SSRPayloadBytes is the slot-request payload length.
	SSRPayloadBytes int
	// GrantEntryBytes is the per-grant addition to a static beacon when
	// a join is being answered.
	GrantEntryBytes int
	// JoinListenLimit caps how long a node listens continuously for its
	// first beacon when joining before cycling the radio.
	JoinListenLimit sim.Time
	// MaxStaticSlots is the fixed slot count of the static TDMA ("the
	// number of available slots is fixed").
	MaxStaticSlots int
	// MaxDynamicSlots caps the dynamic network size.
	MaxDynamicSlots int
}

// CostModel maps each OS/application activity to MSP430 instruction
// cycles, the coarse-grained counterpart of PowerTOSSIM's basic-block
// mapping. Counts are calibrated against the paper's tables (DESIGN.md §5).
type CostModel struct {
	// BeaconParseStatic is the per-TDMA-cycle MCU work in a static
	// network: timer bookkeeping, beacon parse, slot scheduling.
	BeaconParseStatic int64
	// BeaconParseDynamic is the same for the dynamic TDMA (smaller: the
	// slot table is consumed incrementally by the FIFO byte ISR).
	BeaconParseDynamic int64
	// SamplePairStreaming is the per-acquisition cost of reading one
	// simultaneous 2-channel sample pair and buffering it for streaming.
	SamplePairStreaming int64
	// RpeakPerChannelSample is the per-channel, per-sample cost of the
	// R-peak detection algorithm (called for every sample, §5.2).
	RpeakPerChannelSample int64
	// RpeakAcquirePair is the acquisition cost per sample pair in the
	// Rpeak application (no streaming buffer copy).
	RpeakAcquirePair int64
	// PacketAssembly is the cost of finalising a data packet before the
	// FIFO load (header, packing bookkeeping).
	PacketAssembly int64
	// BeatPacketAssembly is the cost of building the small Rpeak event
	// packet.
	BeatPacketAssembly int64
	// SSRPrep is the cost of preparing a slot request during join.
	SSRPrep int64
	// AckProcess is the cost of handling an ACK reception.
	AckProcess int64
	// RadioISR is the generic cost of a radio interrupt entry/exit.
	RadioISR int64
	// BSBeaconBuild, BSDataHandle, BSSlotAssign are base-station costs.
	BSBeaconBuild int64
	BSDataHandle  int64
	BSSlotAssign  int64
	// BSAckTurnaround is the base station's fast path from a received
	// data frame to the queued acknowledgement.
	BSAckTurnaround int64
}

// Profile bundles every hardware and calibration parameter of one
// platform build.
type Profile struct {
	Name  string
	MCU   MCUParams
	Radio RadioParams
	ASIC  ASICParams
	MAC   MACParams
	Cost  CostModel
}

// IMEC returns the profile of the paper's platform: the IMEC-NL
// biopotential node (MSP430F149 + nRF2401 + 25-channel EEG/ECG ASIC).
//
// Calibration summary (fits of the published tables; see EXPERIMENTS.md):
//
//   - The static-TDMA beacon listen window must cost ≈ 0.22 mJ/cycle
//     (Tables 1 and 3 both show radio energy ≈ linear in cycles/s with
//     that coefficient once data packets are subtracted). With RX at
//     69.5 mW that is ≈ 3.17 ms of receiver-on time per cycle:
//     202 µs settle + 2.21 ms guard + 112 µs beacon airtime + 640 µs
//     RX FIFO clock-out of the 8-byte beacon payload at 100 kbps.
//   - A data transmission costs ≈ 49 µJ (streaming-vs-Rpeak deltas in
//     Tables 1/3 and 2/4): 195 µs TX settle + 192 µs airtime of the
//     24-byte frame at TX power, then 202 µs RX settle + ACK wait + ACK
//     airtime + clock-out at RX power.
//   - Dynamic beacons carry a 2-byte slot-table entry per assigned slot;
//     draining them from the RX FIFO at 100 kbps extends the receiver-on
//     tail by 160 µs per node, reproducing the per-cycle radio growth of
//     Tables 2/4 (0.21 → 0.26 mJ/cycle from 1 to 5 nodes).
//   - MCU: the paper's Sim column in Table 1 is exactly linear in the
//     sampling frequency on top of the 110.88 mJ power-save floor;
//     fitting it gives ≈ 480 cycles per 2-channel sample pair and
//     ≈ 6.34 ms of active time per TDMA cycle, which splits into
//     ≈ 2.24 ms cycle overhead (Table 3's cycle sweep isolates it) and
//     ≈ 4.1 ms per data packet — the ShockBurst FIFO load of 24 bytes
//     at a 50 kbps programmed-I/O clock-in plus ≈ 2 k cycles of packet
//     assembly. The Rpeak detector costs ≈ 1230 cycles per channel
//     sample (Table 3's frequency-independent floor).
func IMEC() Profile {
	mcu := MCUParams{
		VoltageV:      mcuSupplyVoltageV,
		ActiveA:       mcuActiveCurrentA,
		PowerSaveA:    mcuPowerSaveCurrentA,
		DeepModesA:    [4]float64{mcuLPM1CurrentA, mcuLPM2CurrentA, mcuLPM3CurrentA, mcuLPM4CurrentA},
		ClockHz:       8e6,
		WakeupLatency: 6 * sim.Microsecond,
	}
	return Profile{
		Name: "imec-ban-node",
		MCU:  mcu,
		Radio: RadioParams{
			VoltageV:         radioSupplyVoltageV,
			TxA:              radioTxCurrentA,
			RxA:              radioRxCurrentA,
			StandbyA:         radioStandbyCurrentA,
			BitrateHz:        1e6,
			PreambleBytes:    1,
			AddressBytes:     3,
			CRCBytes:         2,
			MaxPayloadBytes:  26, // 256-bit FIFO minus address+CRC
			TxSettle:         195 * sim.Microsecond,
			RxSettle:         202 * sim.Microsecond,
			TxFIFOClockInHz:  50e3,
			RxFIFOClockOutHz: 100e3,
			PerByteISRCycles: 24,
		},
		ASIC: ASICParams{
			PowerW:   asicPowerW,
			VoltageV: asicSupplyVoltageV,
			Channels: 25,
			ADCBits:  12,
		},
		MAC: MACParams{
			StaticGuard:            2212 * sim.Microsecond,
			DynamicGuard:           1250 * sim.Microsecond,
			Turnaround:             20 * sim.Microsecond,
			AckTimeout:             1500 * sim.Microsecond,
			AckPayloadBytes:        1,
			BeaconBasePayloadBytes: 8,
			SlotEntryBytes:         2,
			DynamicSlotDuration:    10 * sim.Millisecond,
			SSRPayloadBytes:        4,
			GrantEntryBytes:        3,
			JoinListenLimit:        500 * sim.Millisecond,
			MaxStaticSlots:         5,
			MaxDynamicSlots:        9, // (MaxPayloadBytes - beacon base) / slot entry size
		},
		Cost: CostModel{
			BeaconParseStatic:     17900, // ≈ 2.24 ms at 8 MHz
			BeaconParseDynamic:    14400, // ≈ 1.80 ms at 8 MHz
			SamplePairStreaming:   480,   // ≈ 60 µs
			RpeakPerChannelSample: 1230,  // ≈ 154 µs
			RpeakAcquirePair:      480,
			PacketAssembly:        5900, // ≈ 740 µs; with the 3.36 ms FIFO load ⇒ ≈ 4.1 ms/packet
			BeatPacketAssembly:    800,
			SSRPrep:               1600,
			AckProcess:            320,
			RadioISR:              160,
			BSBeaconBuild:         2400,
			BSDataHandle:          1200,
			BSSlotAssign:          2000,
			BSAckTurnaround:       240, // ≈ 30 µs: interrupt-context ack queueing
		},
	}
}

// BaseStation returns the profile of the collecting device. It is the
// same MSP430 + nRF2401 pairing, but the base station is powered from
// the PC/PDA it feeds, so its firmware runs the FIFO transfers at the
// full SPI rate instead of the nodes' energy-relaxed slow clocking. That
// fast FIFO path is what keeps the data→ack turnaround short enough for
// the nodes' calibrated ~450 µs acknowledgement window.
func BaseStation() Profile {
	p := IMEC()
	p.Name = "imec-ban-basestation"
	p.Radio.TxFIFOClockInHz = 2e6
	p.Radio.RxFIFOClockOutHz = 2e6
	return p
}

// Component meter names used consistently across the framework.
const (
	ComponentMCU   = "mcu"
	ComponentRadio = "radio"
	ComponentASIC  = "asic"
)

// MCU power-state names.
const (
	StateMCUOff       = "off"
	StateMCUActive    = "active"
	StateMCUPowerSave = "power-save"
	StateMCULPM1      = "lpm1"
	StateMCULPM2      = "lpm2"
	StateMCULPM3      = "lpm3"
	StateMCULPM4      = "lpm4"
)

// Radio power-state names.
const (
	StateRadioOff     = "off"
	StateRadioStandby = "standby"
	StateRadioTX      = "tx"
	StateRadioRX      = "rx"
)

// ASIC power-state names.
const (
	StateASICOn  = "on"
	StateASICOff = "off"
)
