// Package trace is a compatibility shim over internal/metrics, the
// structured observability layer that replaced the original standalone
// event ring. Every type here is an alias, so the dozens of component
// call sites (and external tests) keep compiling while feeding the
// metrics recorder — events, exact per-(node, kind) counters and latency
// histograms all come from the same stream.
package trace

import "repro/internal/metrics"

// Kind classifies a recorded event.
type Kind = metrics.Kind

// The event kinds the framework emits (aliases of the metrics kinds).
const (
	KindBeaconTx   = metrics.KindBeaconTx
	KindBeaconRx   = metrics.KindBeaconRx
	KindSSRTx      = metrics.KindSSRTx
	KindSlotGrant  = metrics.KindSlotGrant
	KindSlotStart  = metrics.KindSlotStart
	KindDataTx     = metrics.KindDataTx
	KindDataRx     = metrics.KindDataRx
	KindAckRx      = metrics.KindAckRx
	KindAckMissed  = metrics.KindAckMissed
	KindCollision  = metrics.KindCollision
	KindCRCDrop    = metrics.KindCRCDrop
	KindAddrFilter = metrics.KindAddrFilter
	KindCycleGrow  = metrics.KindCycleGrow
	KindJoined     = metrics.KindJoined
	KindBeat       = metrics.KindBeat

	KindCrash       = metrics.KindCrash
	KindReboot      = metrics.KindReboot
	KindSlotReclaim = metrics.KindSlotReclaim
	KindLinkDown    = metrics.KindLinkDown
	KindLinkUp      = metrics.KindLinkUp
	KindJamOn       = metrics.KindJamOn
	KindJamOff      = metrics.KindJamOff

	KindBrownout    = metrics.KindBrownout
	KindDegrade     = metrics.KindDegrade
	KindParked      = metrics.KindParked
	KindSlotSkip    = metrics.KindSlotSkip
	KindSlotRelease = metrics.KindSlotRelease
	KindDataDropped = metrics.KindDataDropped
)

// Histogram metric names the MAC layer observes through its tracer.
const (
	HistSlotWait = metrics.HistSlotWait
	HistTxToAck  = metrics.HistTxToAck
	HistRejoin   = metrics.HistRejoin
	HistDegraded = metrics.HistDegraded
)

// Event is one recorded occurrence.
type Event = metrics.Event

// Recorder accumulates events, counters and histograms. A nil *Recorder
// is valid and drops everything.
type Recorder = metrics.Recorder

// New creates a recorder that keeps at most limit events (0 = unlimited).
// Counters and histograms are exact regardless of the limit; events past
// it are dropped but counted (see Recorder.Dropped).
func New(limit int) *Recorder { return metrics.NewRecorder(limit) }
