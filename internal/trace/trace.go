// Package trace records typed simulation events so that protocol
// timelines (the paper's Figures 2 and 3) can be printed from an actual
// run, and so tests can assert on protocol behaviour without reaching
// into component internals.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a recorded event.
type Kind string

// The event kinds the framework emits.
const (
	KindBeaconTx   Kind = "beacon-tx"   // base station sent a beacon (SB slot)
	KindBeaconRx   Kind = "beacon-rx"   // node received a beacon (RB in the figures)
	KindSSRTx      Kind = "ssr-tx"      // node sent a slot request (SSRi)
	KindSlotGrant  Kind = "slot-grant"  // base station assigned a slot (Si created)
	KindSlotStart  Kind = "slot-start"  // a node's data slot began
	KindDataTx     Kind = "data-tx"     // node transmitted a data frame
	KindDataRx     Kind = "data-rx"     // base station accepted a data frame
	KindAckRx      Kind = "ack-rx"      // node received the acknowledgement
	KindAckMissed  Kind = "ack-missed"  // ack window elapsed with no ack
	KindCollision  Kind = "collision"   // a frame was corrupted by overlap
	KindCRCDrop    Kind = "crc-drop"    // radio discarded a frame on CRC
	KindAddrFilter Kind = "addr-filter" // radio discarded an overheard frame
	KindCycleGrow  Kind = "cycle-grow"  // dynamic TDMA extended its cycle
	KindJoined     Kind = "joined"      // node completed the join handshake
	KindBeat       Kind = "beat"        // Rpeak application detected a beat

	// Fault-injection events (internal/fault).
	KindCrash       Kind = "crash"        // node lost power (fault injection)
	KindReboot      Kind = "reboot"       // node cold-booted after a crash
	KindSlotReclaim Kind = "slot-reclaim" // base station freed a silent node's slot
	KindLinkDown    Kind = "link-down"    // a path entered a blackout window
	KindLinkUp      Kind = "link-up"      // a blacked-out path was restored
	KindJamOn       Kind = "jam-on"       // external interference burst began
	KindJamOff      Kind = "jam-off"      // external interference burst ended
)

// Event is one recorded occurrence.
type Event struct {
	At     sim.Time
	Node   string // "bs" or the sensor node name
	Kind   Kind
	Detail string
}

// String renders the event as one timeline line.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%10.3fms  %-6s %s", e.At.Milliseconds(), e.Node, e.Kind)
	}
	return fmt.Sprintf("%10.3fms  %-6s %-12s %s", e.At.Milliseconds(), e.Node, e.Kind, e.Detail)
}

// Recorder accumulates events. A nil *Recorder is valid and drops
// everything, so components can trace unconditionally.
type Recorder struct {
	events []Event
	limit  int
}

// New creates a recorder that keeps at most limit events (0 = unlimited).
func New(limit int) *Recorder { return &Recorder{limit: limit} }

// Record appends an event. Safe on a nil receiver.
func (r *Recorder) Record(at sim.Time, node string, kind Kind, detail string) {
	if r == nil {
		return
	}
	if r.limit > 0 && len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, Event{At: at, Node: node, Kind: kind, Detail: detail})
}

// Recordf is Record with a format string.
func (r *Recorder) Recordf(at sim.Time, node string, kind Kind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(at, node, kind, fmt.Sprintf(format, args...))
}

// Events returns all recorded events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Filter returns the events matching kind, in order.
func (r *Recorder) Filter(kind Kind) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, e := range r.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// ByNode returns the events attributed to node, in order.
func (r *Recorder) ByNode(node string) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, e := range r.events {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// Count reports how many events of the given kind were recorded.
func (r *Recorder) Count(kind Kind) int { return len(r.Filter(kind)) }

// Render formats the whole timeline as text.
func (r *Recorder) Render() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
