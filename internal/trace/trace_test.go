package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecordAndQuery(t *testing.T) {
	r := New(0)
	r.Record(0, "bs", KindBeaconTx, "seq=0")
	r.Record(5*sim.Millisecond, "node1", KindBeaconRx, "seq=0")
	r.Recordf(6*sim.Millisecond, "node1", KindSSRTx, "nonce=%d", 42)
	r.Record(30*sim.Millisecond, "bs", KindBeaconTx, "seq=1")

	if got := len(r.Events()); got != 4 {
		t.Fatalf("events = %d, want 4", got)
	}
	if got := r.Count(KindBeaconTx); got != 2 {
		t.Fatalf("beacon-tx count = %d, want 2", got)
	}
	by := r.ByNode("node1")
	if len(by) != 2 || by[1].Detail != "nonce=42" {
		t.Fatalf("ByNode = %+v", by)
	}
	f := r.Filter(KindSSRTx)
	if len(f) != 1 || f[0].At != 6*sim.Millisecond {
		t.Fatalf("Filter = %+v", f)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, "bs", KindBeaconTx, "")
	r.Recordf(0, "bs", KindBeaconTx, "x%d", 1)
	if r.Events() != nil || r.Filter(KindBeaconTx) != nil || r.ByNode("bs") != nil {
		t.Fatalf("nil recorder returned data")
	}
	if r.Count(KindBeaconTx) != 0 {
		t.Fatalf("nil recorder counted events")
	}
}

func TestLimit(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(sim.Time(i), "n", KindDataTx, "")
	}
	if got := len(r.Events()); got != 2 {
		t.Fatalf("limited recorder kept %d events, want 2", got)
	}
	// The drop is counted and surfaced, never silent: Count stays exact
	// and Render appends a trailer naming the loss.
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	if got := r.Count(KindDataTx); got != 5 {
		t.Fatalf("Count = %d, want the exact 5 despite the limit", got)
	}
	if out := r.Render(); !strings.Contains(out, "3 further event(s) dropped") {
		t.Fatalf("Render hides the drop:\n%s", out)
	}
}

func TestRender(t *testing.T) {
	r := New(0)
	r.Record(30*sim.Millisecond, "bs", KindBeaconTx, "seq=1")
	r.Record(31*sim.Millisecond, "node2", KindBeaconRx, "")
	out := r.Render()
	if !strings.Contains(out, "beacon-tx") || !strings.Contains(out, "seq=1") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("render lines = %d, want 2", lines)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 30 * sim.Millisecond, Node: "bs", Kind: KindBeaconTx}
	if !strings.Contains(e.String(), "30.000ms") {
		t.Fatalf("String() = %q", e.String())
	}
	e.Detail = "seq=3"
	if !strings.Contains(e.String(), "seq=3") {
		t.Fatalf("String() with detail = %q", e.String())
	}
}
