package core

import (
	"testing"

	"repro/internal/battery"
	"repro/internal/fault"
	"repro/internal/mac"
	"repro/internal/sim"
)

// lifetimeConfig is a battery-backed scenario small enough that the
// cells run dry inside the window.
func lifetimeConfig(seed int64, scale float64, degrade bool) Config {
	cell := battery.CR2032()
	cell.CapacityMAh *= scale
	cfg := Config{
		Variant:      mac.Dynamic,
		Nodes:        3,
		App:          AppStreaming,
		SampleRateHz: 205,
		Duration:     20 * sim.Second,
		Warmup:       2 * sim.Second,
		Seed:         seed,
		Battery:      &cell,
	}
	if degrade {
		p := battery.DefaultDegradePolicy()
		cfg.Degrade = &p
		cfg.SlotReclaimCycles = 12
	}
	return cfg
}

func TestBatteryConfigValidate(t *testing.T) {
	base := Config{
		Variant: mac.Static, Nodes: 2, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: sim.Second,
	}
	cell := battery.CR2032()

	// Battery-dependent knobs without a battery are configuration errors,
	// not silent no-ops.
	c := base
	c.BrownoutV = 2.0
	if err := (&c).Validate(); err == nil {
		t.Error("brownoutV without a battery accepted")
	}
	c = base
	p := battery.DefaultDegradePolicy()
	c.Degrade = &p
	if err := (&c).Validate(); err == nil {
		t.Error("degradePolicy without a battery accepted")
	}

	// Unusable cells.
	for i, mutate := range []func(b *battery.Battery){
		func(b *battery.Battery) { b.CapacityMAh = 0 },
		func(b *battery.Battery) { b.VoltageV = -1 },
		func(b *battery.Battery) { b.Efficiency = 1.5 },
	} {
		c = base
		bad := cell
		mutate(&bad)
		c.Battery = &bad
		if err := (&c).Validate(); err == nil {
			t.Errorf("unusable cell %d accepted", i)
		}
	}

	// Brownout thresholds the discharge curve can never cross.
	for _, v := range []float64{cell.VoltageAt(0) - 0.1, cell.VoltageAt(1) + 0.1} {
		c = base
		b := cell
		c.Battery = &b
		c.BrownoutV = v
		if err := (&c).Validate(); err == nil {
			t.Errorf("out-of-range brownout %v V accepted", v)
		}
	}

	// A valid battery config defaults the cutoff and normalises the
	// policy on a private copy.
	c = base
	b := cell
	c.Battery = &b
	shared := battery.DegradePolicy{}
	c.Degrade = &shared
	if err := (&c).Validate(); err != nil {
		t.Fatalf("valid battery config rejected: %v", err)
	}
	if c.BrownoutV != cell.DefaultCutoffV() {
		t.Fatalf("brownout defaulted to %v, want %v", c.BrownoutV, cell.DefaultCutoffV())
	}
	if shared != (battery.DegradePolicy{}) {
		t.Fatalf("caller's policy mutated: %+v", shared)
	}
	if *c.Degrade != battery.DefaultDegradePolicy() {
		t.Fatalf("policy not normalised: %+v", *c.Degrade)
	}

	// An invalid policy propagates its error.
	c = base
	b = cell
	c.Battery = &b
	c.Degrade = &battery.DegradePolicy{StretchEvery: 1}
	if err := (&c).Validate(); err == nil {
		t.Error("invalid degrade policy accepted")
	}
}

func TestBatteryScenarioRoundTrip(t *testing.T) {
	data := []byte(`{
		"mac": "dynamic", "nodes": 2, "app": "streaming", "sampleRateHz": 205,
		"duration": "5s", "seed": 3,
		"battery": {"cell": "cr2032", "capacityScale": 1e-3},
		"brownoutV": 2.1,
		"degradePolicy": {"stretchSOC": 0.4, "stretchEvery": 3, "downshiftSOC": 0.2, "beaconOnlySOC": 0.06}
	}`)
	cfg, err := ConfigFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	ref := battery.CR2032()
	if cfg.Battery == nil || cfg.Battery.VoltageV != ref.VoltageV {
		t.Fatalf("battery = %+v", cfg.Battery)
	}
	if want := ref.CapacityMAh * 1e-3; cfg.Battery.CapacityMAh != want {
		t.Fatalf("scaled capacity = %v, want %v", cfg.Battery.CapacityMAh, want)
	}
	if cfg.BrownoutV != 2.1 {
		t.Fatalf("brownoutV = %v", cfg.BrownoutV)
	}
	if cfg.Degrade == nil || cfg.Degrade.StretchSOC != 0.4 || cfg.Degrade.StretchEvery != 3 {
		t.Fatalf("degrade = %+v", cfg.Degrade)
	}
	out, err := ConfigToJSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ConfigFromJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if *back.Battery != *cfg.Battery || back.BrownoutV != cfg.BrownoutV || *back.Degrade != *cfg.Degrade {
		t.Fatalf("round trip changed the battery fields:\n was %+v %v %+v\n got %+v %v %+v",
			*cfg.Battery, cfg.BrownoutV, *cfg.Degrade, *back.Battery, back.BrownoutV, *back.Degrade)
	}

	// Unknown presets are rejected with a decode error.
	if _, err := ConfigFromJSON([]byte(`{"battery": {"cell": "aaa"}}`)); err == nil {
		t.Error("unknown battery preset accepted")
	}
}

// TestBrownoutEmergesInResults runs the cells dry and checks the
// emergent deaths surface everywhere the tentpole promises: per-node
// battery reports, brownout outcomes next to injected faults, and the
// lifetime figures.
func TestBrownoutEmergesInResults(t *testing.T) {
	cfg := lifetimeConfig(7, 2e-4, false)
	// The crashed node spends 2 s powered off, saving charge; a longer
	// window lets it reach its (later) brownout too.
	cfg.Duration = 25 * sim.Second
	cfg.Faults = []fault.Fault{
		{Kind: fault.KindCrash, Node: 2, At: 8 * sim.Second, RebootAfter: 2 * sim.Second},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var deaths int
	for _, n := range res.Nodes {
		if n.Battery == nil {
			t.Fatalf("%s: no battery report", n.Name)
		}
		if n.Battery.Died {
			deaths++
			if n.Battery.DiedAt <= 0 || n.Battery.DiedAt > cfg.Duration+cfg.Warmup {
				t.Fatalf("%s died at %v, outside the run", n.Name, n.Battery.DiedAt)
			}
		}
	}
	if deaths != len(res.Nodes) {
		t.Fatalf("%d of %d nodes browned out; the cells were sized to run dry", deaths, len(res.Nodes))
	}
	if res.TimeToFirstDeath <= 0 || res.NetworkLifetime < res.TimeToFirstDeath {
		t.Fatalf("lifetime figures: ttfd=%v lifetime=%v", res.TimeToFirstDeath, res.NetworkLifetime)
	}
	// The brownouts appear in the fault outcomes alongside the scheduled
	// crash, in deterministic order.
	var brownouts, crashes int
	for _, o := range res.Faults {
		switch o.Fault.Kind {
		case fault.KindBrownout:
			brownouts++
		case fault.KindCrash:
			crashes++
		}
	}
	if brownouts != deaths || crashes != 1 {
		t.Fatalf("outcomes: %d brownouts (want %d), %d crashes (want 1)", brownouts, deaths, crashes)
	}
}

// TestDegradePolicyExtendsLifetime is the closed loop the subsystem
// exists for: under the same load, seed and cell, switching the
// degradation policy on must not shorten any node's life — and must
// measurably stretch the network's.
func TestDegradePolicyExtendsLifetime(t *testing.T) {
	for _, seed := range []int64{1, 7, 21} {
		plain, err := Run(lifetimeConfig(seed, 2e-4, false))
		if err != nil {
			t.Fatal(err)
		}
		soft, err := Run(lifetimeConfig(seed, 2e-4, true))
		if err != nil {
			t.Fatal(err)
		}
		// Per-node twin property: a degraded node dies no earlier than its
		// non-degraded twin. Both twins drain identical cells, so a later
		// death is exactly a lower average power while alive.
		for i := range plain.Nodes {
			p, s := plain.Nodes[i].Battery, soft.Nodes[i].Battery
			if !p.Died {
				t.Fatalf("seed %d: baseline %s survived; shrink the cell", seed, plain.Nodes[i].Name)
			}
			if s.Died && s.DiedAt < p.DiedAt {
				t.Errorf("seed %d %s: died at %v degraded vs %v baseline — the policy cost energy",
					seed, plain.Nodes[i].Name, s.DiedAt, p.DiedAt)
			}
		}
		// Network-level: the degraded run's lifetime strictly exceeds the
		// baseline's (0 means the majority outlived the whole window).
		if soft.NetworkLifetime != 0 && soft.NetworkLifetime <= plain.NetworkLifetime {
			t.Errorf("seed %d: network lifetime %v with the policy vs %v without",
				seed, soft.NetworkLifetime, plain.NetworkLifetime)
		}
	}
}
