package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/audit"
	"repro/internal/battery"
	"repro/internal/channel"
	"repro/internal/fault"
	"repro/internal/mac"
	"repro/internal/sim"
)

// scenarioJSON is the on-disk scenario schema: a flat, readable form of
// Config with string enums and duration strings.
type scenarioJSON struct {
	Mac          string                 `json:"mac"`           // "static" | "dynamic"
	Nodes        int                    `json:"nodes"`         //
	Cycle        sim.Time               `json:"cycle"`         // "30ms" (static only)
	App          string                 `json:"app"`           // "streaming" | "rpeak" | "hrv" | "eeg"
	SampleRateHz float64                `json:"sampleRateHz"`  //
	HeartRateBPM float64                `json:"heartRateBPM"`  //
	Duration     sim.Time               `json:"duration"`      // "60s"
	Warmup       sim.Time               `json:"warmup"`        // "3s" (optional)
	Seed         int64                  `json:"seed"`          //
	BER          float64                `json:"ber"`           //
	Burst        *channel.BurstModel    `json:"burst"`         //
	DriftPPM     float64                `json:"clockDriftPPM"` //
	StartStagger sim.Time               `json:"startStagger"`  //
	Faults       []fault.Fault          `json:"faults,omitempty"`
	SlotReclaim  int                    `json:"slotReclaimCycles,omitempty"`
	TraceLimit   int                    `json:"traceLimit,omitempty"`    // event ring cap (0 = default)
	Metrics      bool                   `json:"metrics,omitempty"`       // collect the observability snapshot
	Battery      *batteryJSON           `json:"battery,omitempty"`       // live cell per node
	BrownoutV    float64                `json:"brownoutV,omitempty"`     // supply cutoff (0 = cell default)
	Degrade      *battery.DegradePolicy `json:"degradePolicy,omitempty"` // low-battery watermarks
	Scheduler    string                 `json:"scheduler,omitempty"`     // "wheel" (default) | "heap"
	Audit        *auditJSON             `json:"audit,omitempty"`         // runtime invariant audits
}

// auditJSON enables the runtime invariant-audit engine for a scenario.
type auditJSON struct {
	// CheckInterval is the in-simulation sweep cadence as a duration
	// string; omitted selects the engine default. Must be positive when
	// present — a zero or negative cadence would stall the sweep loop.
	CheckInterval *sim.Time `json:"checkInterval,omitempty"`
	// Limit caps recorded violation rows (0 = engine default).
	Limit int `json:"limit,omitempty"`
}

// batteryJSON names a cell either by preset ("cr2032" | "lipo160") or by
// explicit rating; explicit fields override the preset's, and
// capacityScale multiplies the capacity afterwards (lifetime scenarios
// shrink a coin cell so deaths land inside a simulable window).
type batteryJSON struct {
	Cell          string  `json:"cell,omitempty"`
	CapacityMAh   float64 `json:"capacityMAh,omitempty"`
	VoltageV      float64 `json:"voltageV,omitempty"`
	Efficiency    float64 `json:"efficiency,omitempty"`
	CapacityScale float64 `json:"capacityScale,omitempty"`
}

// decodeBattery resolves a batteryJSON into a concrete cell.
func decodeBattery(bj *batteryJSON) (*battery.Battery, error) {
	var b battery.Battery
	switch bj.Cell {
	case "":
	case "cr2032":
		b = battery.CR2032()
	case "lipo160":
		b = battery.LiPo160()
	default:
		return nil, fmt.Errorf("core: unknown battery cell %q", bj.Cell)
	}
	if bj.CapacityMAh > 0 {
		b.CapacityMAh = bj.CapacityMAh
	}
	if bj.VoltageV > 0 {
		b.VoltageV = bj.VoltageV
	}
	if bj.Efficiency > 0 {
		b.Efficiency = bj.Efficiency
	}
	if bj.CapacityScale > 0 {
		b.CapacityMAh *= bj.CapacityScale
	}
	return &b, nil
}

// ConfigFromJSON parses a scenario description. Validation happens at
// Run; this only decodes the shape.
func ConfigFromJSON(data []byte) (Config, error) {
	var s scenarioJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return Config{}, fmt.Errorf("core: bad scenario: %w", err)
	}
	cfg := Config{
		Nodes:             s.Nodes,
		Cycle:             s.Cycle,
		App:               AppKind(s.App),
		SampleRateHz:      s.SampleRateHz,
		HeartRateBPM:      s.HeartRateBPM,
		Duration:          s.Duration,
		Warmup:            s.Warmup,
		Seed:              s.Seed,
		BER:               s.BER,
		Burst:             s.Burst,
		ClockDriftPPM:     s.DriftPPM,
		StartStagger:      s.StartStagger,
		Faults:            s.Faults,
		SlotReclaimCycles: s.SlotReclaim,
		TraceLimit:        s.TraceLimit,
		Metrics:           s.Metrics,
		Scheduler:         s.Scheduler,
	}
	// Normalise an explicit empty list to nil so a decode/encode round
	// trip is value-identical (the encoder omits the field either way).
	if len(cfg.Faults) == 0 {
		cfg.Faults = nil
	}
	if s.Battery != nil {
		b, err := decodeBattery(s.Battery)
		if err != nil {
			return Config{}, err
		}
		cfg.Battery = b
	}
	cfg.BrownoutV = s.BrownoutV
	cfg.Degrade = s.Degrade
	if s.Audit != nil {
		ac := audit.Config{Limit: s.Audit.Limit}
		if iv := s.Audit.CheckInterval; iv != nil {
			if *iv <= 0 {
				return Config{}, fmt.Errorf("core: audit checkInterval %v must be positive", *iv)
			}
			ac.Every = *iv
		}
		cfg.Audit = &ac
	}
	switch s.Mac {
	case "static", "":
		cfg.Variant = mac.Static
	case "dynamic":
		cfg.Variant = mac.Dynamic
	default:
		return Config{}, fmt.Errorf("core: unknown mac %q", s.Mac)
	}
	return cfg, nil
}

// ConfigToJSON renders a Config back into the scenario schema.
func ConfigToJSON(cfg Config) ([]byte, error) {
	s := scenarioJSON{
		Mac:          cfg.Variant.String(),
		Nodes:        cfg.Nodes,
		Cycle:        cfg.Cycle,
		App:          string(cfg.App),
		SampleRateHz: cfg.SampleRateHz,
		HeartRateBPM: cfg.HeartRateBPM,
		Duration:     cfg.Duration,
		Warmup:       cfg.Warmup,
		Seed:         cfg.Seed,
		BER:          cfg.BER,
		Burst:        cfg.Burst,
		DriftPPM:     cfg.ClockDriftPPM,
		StartStagger: cfg.StartStagger,
		Faults:       cfg.Faults,
		SlotReclaim:  cfg.SlotReclaimCycles,
		TraceLimit:   cfg.TraceLimit,
		Metrics:      cfg.Metrics,
		BrownoutV:    cfg.BrownoutV,
		Degrade:      cfg.Degrade,
		Scheduler:    cfg.Scheduler,
	}
	if a := cfg.Audit; a != nil {
		aj := &auditJSON{Limit: a.Limit}
		if a.Every > 0 {
			iv := a.Every
			aj.CheckInterval = &iv
		}
		s.Audit = aj
	}
	if b := cfg.Battery; b != nil {
		// Emit the resolved rating only: presets and scale factors are
		// decode-time sugar, so decode(encode(decode(x))) is an identity.
		s.Battery = &batteryJSON{
			CapacityMAh: b.CapacityMAh,
			VoltageV:    b.VoltageV,
			Efficiency:  b.Efficiency,
		}
	}
	return json.MarshalIndent(s, "", "  ")
}
