package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/channel"
	"repro/internal/fault"
	"repro/internal/mac"
	"repro/internal/sim"
)

// scenarioJSON is the on-disk scenario schema: a flat, readable form of
// Config with string enums and duration strings.
type scenarioJSON struct {
	Mac          string              `json:"mac"`           // "static" | "dynamic"
	Nodes        int                 `json:"nodes"`         //
	Cycle        sim.Time            `json:"cycle"`         // "30ms" (static only)
	App          string              `json:"app"`           // "streaming" | "rpeak" | "hrv" | "eeg"
	SampleRateHz float64             `json:"sampleRateHz"`  //
	HeartRateBPM float64             `json:"heartRateBPM"`  //
	Duration     sim.Time            `json:"duration"`      // "60s"
	Warmup       sim.Time            `json:"warmup"`        // "3s" (optional)
	Seed         int64               `json:"seed"`          //
	BER          float64             `json:"ber"`           //
	Burst        *channel.BurstModel `json:"burst"`         //
	DriftPPM     float64             `json:"clockDriftPPM"` //
	StartStagger sim.Time            `json:"startStagger"`  //
	Faults       []fault.Fault       `json:"faults,omitempty"`
	SlotReclaim  int                 `json:"slotReclaimCycles,omitempty"`
	TraceLimit   int                 `json:"traceLimit,omitempty"` // event ring cap (0 = default)
	Metrics      bool                `json:"metrics,omitempty"`    // collect the observability snapshot
}

// ConfigFromJSON parses a scenario description. Validation happens at
// Run; this only decodes the shape.
func ConfigFromJSON(data []byte) (Config, error) {
	var s scenarioJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return Config{}, fmt.Errorf("core: bad scenario: %w", err)
	}
	cfg := Config{
		Nodes:             s.Nodes,
		Cycle:             s.Cycle,
		App:               AppKind(s.App),
		SampleRateHz:      s.SampleRateHz,
		HeartRateBPM:      s.HeartRateBPM,
		Duration:          s.Duration,
		Warmup:            s.Warmup,
		Seed:              s.Seed,
		BER:               s.BER,
		Burst:             s.Burst,
		ClockDriftPPM:     s.DriftPPM,
		StartStagger:      s.StartStagger,
		Faults:            s.Faults,
		SlotReclaimCycles: s.SlotReclaim,
		TraceLimit:        s.TraceLimit,
		Metrics:           s.Metrics,
	}
	// Normalise an explicit empty list to nil so a decode/encode round
	// trip is value-identical (the encoder omits the field either way).
	if len(cfg.Faults) == 0 {
		cfg.Faults = nil
	}
	switch s.Mac {
	case "static", "":
		cfg.Variant = mac.Static
	case "dynamic":
		cfg.Variant = mac.Dynamic
	default:
		return Config{}, fmt.Errorf("core: unknown mac %q", s.Mac)
	}
	return cfg, nil
}

// ConfigToJSON renders a Config back into the scenario schema.
func ConfigToJSON(cfg Config) ([]byte, error) {
	s := scenarioJSON{
		Mac:          cfg.Variant.String(),
		Nodes:        cfg.Nodes,
		Cycle:        cfg.Cycle,
		App:          string(cfg.App),
		SampleRateHz: cfg.SampleRateHz,
		HeartRateBPM: cfg.HeartRateBPM,
		Duration:     cfg.Duration,
		Warmup:       cfg.Warmup,
		Seed:         cfg.Seed,
		BER:          cfg.BER,
		Burst:        cfg.Burst,
		DriftPPM:     cfg.ClockDriftPPM,
		StartStagger: cfg.StartStagger,
		Faults:       cfg.Faults,
		SlotReclaim:  cfg.SlotReclaimCycles,
		TraceLimit:   cfg.TraceLimit,
		Metrics:      cfg.Metrics,
	}
	return json.MarshalIndent(s, "", "  ")
}
