package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/audit"
	"repro/internal/battery"
	"repro/internal/channel"
	"repro/internal/fault"
	"repro/internal/mac"
	"repro/internal/sim"
)

// scenarioJSON is the on-disk scenario schema: a flat, readable form of
// Config with string enums and duration strings.
type scenarioJSON struct {
	Mac          macJSON                `json:"mac"`           // "static" | {"protocol":"csma",...}
	Nodes        int                    `json:"nodes"`         //
	Cycle        sim.Time               `json:"cycle"`         // "30ms" (static only)
	App          string                 `json:"app"`           // "streaming" | "rpeak" | "hrv" | "eeg"
	SampleRateHz float64                `json:"sampleRateHz"`  //
	HeartRateBPM float64                `json:"heartRateBPM"`  //
	Duration     sim.Time               `json:"duration"`      // "60s"
	Warmup       sim.Time               `json:"warmup"`        // "3s" (optional)
	Seed         int64                  `json:"seed"`          //
	BER          float64                `json:"ber"`           //
	Burst        *channel.BurstModel    `json:"burst"`         //
	DriftPPM     float64                `json:"clockDriftPPM"` //
	StartStagger sim.Time               `json:"startStagger"`  //
	Faults       []fault.Fault          `json:"faults,omitempty"`
	SlotReclaim  int                    `json:"slotReclaimCycles,omitempty"`
	TraceLimit   int                    `json:"traceLimit,omitempty"`    // event ring cap (0 = default)
	Metrics      bool                   `json:"metrics,omitempty"`       // collect the observability snapshot
	Battery      *batteryJSON           `json:"battery,omitempty"`       // live cell per node
	BrownoutV    float64                `json:"brownoutV,omitempty"`     // supply cutoff (0 = cell default)
	Degrade      *battery.DegradePolicy `json:"degradePolicy,omitempty"` // low-battery watermarks
	Scheduler    string                 `json:"scheduler,omitempty"`     // "wheel" (default) | "heap"
	MaxEvents    uint64                 `json:"maxEvents,omitempty"`     // kernel event budget (0 = unlimited)
	Audit        *auditJSON             `json:"audit,omitempty"`         // runtime invariant audits
}

// macJSON selects the MAC protocol. The historical form is a bare
// string naming the protocol; the object form adds the protocol's
// tuning knobs ({"protocol":"csma","minBE":2,...} or
// {"protocol":"lpl","checkInterval":"50ms"}). Both forms decode into
// the same value, and the encoder emits the bare string whenever every
// knob is at its default.
type macJSON struct {
	Protocol      string   `json:"protocol"`
	MinBE         int      `json:"minBE,omitempty"`
	MaxBE         int      `json:"maxBE,omitempty"`
	MaxBackoffs   int      `json:"maxBackoffs,omitempty"`
	CheckInterval sim.Time `json:"checkInterval,omitempty"`
}

func (m *macJSON) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		*m = macJSON{Protocol: s}
		return nil
	}
	// Alias sheds the method set so the object form decodes without
	// recursing into this unmarshaller.
	type alias macJSON
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*m = macJSON(a)
	return nil
}

func (m macJSON) MarshalJSON() ([]byte, error) {
	if m.MinBE == 0 && m.MaxBE == 0 && m.MaxBackoffs == 0 && m.CheckInterval == 0 {
		return json.Marshal(m.Protocol)
	}
	type alias macJSON
	return json.Marshal(alias(m))
}

// params converts the decoded knobs into the MAC layer's Params.
func (m macJSON) params() mac.Params {
	return mac.Params{
		MinBE:         m.MinBE,
		MaxBE:         m.MaxBE,
		MaxBackoffs:   m.MaxBackoffs,
		CheckInterval: m.CheckInterval,
	}
}

// auditJSON enables the runtime invariant-audit engine for a scenario.
type auditJSON struct {
	// CheckInterval is the in-simulation sweep cadence as a duration
	// string; omitted selects the engine default. Must be positive when
	// present — a zero or negative cadence would stall the sweep loop.
	CheckInterval *sim.Time `json:"checkInterval,omitempty"`
	// Limit caps recorded violation rows (0 = engine default).
	Limit int `json:"limit,omitempty"`
}

// batteryJSON names a cell either by preset ("cr2032" | "lipo160") or by
// explicit rating; explicit fields override the preset's, and
// capacityScale multiplies the capacity afterwards (lifetime scenarios
// shrink a coin cell so deaths land inside a simulable window).
type batteryJSON struct {
	Cell          string  `json:"cell,omitempty"`
	CapacityMAh   float64 `json:"capacityMAh,omitempty"`
	VoltageV      float64 `json:"voltageV,omitempty"`
	Efficiency    float64 `json:"efficiency,omitempty"`
	CapacityScale float64 `json:"capacityScale,omitempty"`
}

// decodeBattery resolves a batteryJSON into a concrete cell.
func decodeBattery(bj *batteryJSON) (*battery.Battery, error) {
	var b battery.Battery
	switch bj.Cell {
	case "":
	case "cr2032":
		b = battery.CR2032()
	case "lipo160":
		b = battery.LiPo160()
	default:
		return nil, fmt.Errorf("core: unknown battery cell %q", bj.Cell)
	}
	if bj.CapacityMAh > 0 {
		b.CapacityMAh = bj.CapacityMAh
	}
	if bj.VoltageV > 0 {
		b.VoltageV = bj.VoltageV
	}
	if bj.Efficiency > 0 {
		b.Efficiency = bj.Efficiency
	}
	if bj.CapacityScale > 0 {
		b.CapacityMAh *= bj.CapacityScale
	}
	return &b, nil
}

// ConfigFromJSON parses a scenario description. Validation happens at
// Run; this only decodes the shape.
func ConfigFromJSON(data []byte) (Config, error) {
	var s scenarioJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return Config{}, fmt.Errorf("core: bad scenario: %w", err)
	}
	cfg := Config{
		Nodes:             s.Nodes,
		Cycle:             s.Cycle,
		App:               AppKind(s.App),
		SampleRateHz:      s.SampleRateHz,
		HeartRateBPM:      s.HeartRateBPM,
		Duration:          s.Duration,
		Warmup:            s.Warmup,
		Seed:              s.Seed,
		BER:               s.BER,
		Burst:             s.Burst,
		ClockDriftPPM:     s.DriftPPM,
		StartStagger:      s.StartStagger,
		Faults:            s.Faults,
		SlotReclaimCycles: s.SlotReclaim,
		TraceLimit:        s.TraceLimit,
		Metrics:           s.Metrics,
		Scheduler:         s.Scheduler,
		MaxEvents:         s.MaxEvents,
	}
	// Normalise an explicit empty list to nil so a decode/encode round
	// trip is value-identical (the encoder omits the field either way).
	if len(cfg.Faults) == 0 {
		cfg.Faults = nil
	}
	if s.Battery != nil {
		b, err := decodeBattery(s.Battery)
		if err != nil {
			return Config{}, err
		}
		cfg.Battery = b
	}
	cfg.BrownoutV = s.BrownoutV
	cfg.Degrade = s.Degrade
	if s.Audit != nil {
		ac := audit.Config{Limit: s.Audit.Limit}
		if iv := s.Audit.CheckInterval; iv != nil {
			if *iv <= 0 {
				return Config{}, fmt.Errorf("core: audit checkInterval %v must be positive", *iv)
			}
			ac.Every = *iv
		}
		cfg.Audit = &ac
	}
	proto := mac.Protocol(s.Mac.Protocol)
	if proto == "" {
		proto = mac.ProtoStatic
	}
	desc, ok := mac.Lookup(proto)
	if !ok {
		return Config{}, fmt.Errorf("core: unknown mac %q", s.Mac.Protocol)
	}
	cfg.MACParams = s.Mac.params()
	if err := desc.Validate(cfg.MACParams); err != nil {
		return Config{}, err
	}
	cfg.Protocol = proto
	// The Variant field mirrors the TDMA protocols for callers that still
	// read it; contention protocols leave it at its zero value.
	if proto == mac.ProtoDynamic {
		cfg.Variant = mac.Dynamic
	}
	return cfg, nil
}

// ConfigToJSON renders a Config back into the scenario schema.
func ConfigToJSON(cfg Config) ([]byte, error) {
	proto := cfg.Protocol
	if proto == "" {
		proto = cfg.Variant.Protocol()
	}
	s := scenarioJSON{
		Mac: macJSON{
			Protocol:      string(proto),
			MinBE:         cfg.MACParams.MinBE,
			MaxBE:         cfg.MACParams.MaxBE,
			MaxBackoffs:   cfg.MACParams.MaxBackoffs,
			CheckInterval: cfg.MACParams.CheckInterval,
		},
		Nodes:        cfg.Nodes,
		Cycle:        cfg.Cycle,
		App:          string(cfg.App),
		SampleRateHz: cfg.SampleRateHz,
		HeartRateBPM: cfg.HeartRateBPM,
		Duration:     cfg.Duration,
		Warmup:       cfg.Warmup,
		Seed:         cfg.Seed,
		BER:          cfg.BER,
		Burst:        cfg.Burst,
		DriftPPM:     cfg.ClockDriftPPM,
		StartStagger: cfg.StartStagger,
		Faults:       cfg.Faults,
		SlotReclaim:  cfg.SlotReclaimCycles,
		TraceLimit:   cfg.TraceLimit,
		Metrics:      cfg.Metrics,
		BrownoutV:    cfg.BrownoutV,
		Degrade:      cfg.Degrade,
		Scheduler:    cfg.Scheduler,
		MaxEvents:    cfg.MaxEvents,
	}
	if a := cfg.Audit; a != nil {
		aj := &auditJSON{Limit: a.Limit}
		if a.Every > 0 {
			iv := a.Every
			aj.CheckInterval = &iv
		}
		s.Audit = aj
	}
	if b := cfg.Battery; b != nil {
		// Emit the resolved rating only: presets and scale factors are
		// decode-time sugar, so decode(encode(decode(x))) is an identity.
		s.Battery = &batteryJSON{
			CapacityMAh: b.CapacityMAh,
			VoltageV:    b.VoltageV,
			Efficiency:  b.Efficiency,
		}
	}
	return json.MarshalIndent(s, "", "  ")
}
