package core

import (
	"repro/internal/audit"
	"repro/internal/mac"
	"repro/internal/node"
	"repro/internal/sim"
)

// registerAudits wires every component's invariants into the audit
// engine. Each check is a pure observer: it may flush an energy ledger
// (closing open intervals is idempotent accounting) but never touches
// the kernel's random stream or schedules events, so a run with audits
// on reproduces the run with audits off byte for byte.
//
// The registered laws, per ROADMAP item and DESIGN §13:
//
//   - time-monotonic: the kernel clock never runs backwards.
//   - event-pool (final only): the wheel's slot pool balances — every
//     allocated slot is recycled or live; checked once at run end so a
//     leak anywhere in the run is caught after the queue drains.
//   - slot-table (slotted MACs): the base station's node↔slot maps
//     stay inverse bijections, in range, dense (dynamic), and
//     grant-consistent. Contention MACs register member-table instead:
//     the membership bookkeeping stays bijective and in range.
//   - frame-conservation: per node, the MAC's counters balance —
//     every missed ack became a retry or drop, every transmitted frame
//     is acked, timed out, abandoned or (at most one) pending.
//   - slot-containment (slotted MACs): a joined node's grant window
//     fits inside the cycle it learned from its reference beacon.
//     Contention MACs register channel-access instead: CCA and strobe
//     counters stay mutually consistent with the frames transmitted.
//   - generation-monotonic: the crash generation counter never
//     regresses, across any number of crash/reboot cycles.
//   - battery-conservation: the coulomb counter's epoch draw equals
//     the ledger readings it consumed, and never exceeds what the
//     ledger metered (within approx tolerance).
//   - battery-dead-sticky / battery-level-monotonic: a browned-out
//     cell stays dead, and the degradation ladder is only descended.
func registerAudits(eng *audit.Engine, k *sim.Kernel, caps mac.Capabilities, base *node.Base, sensors []*node.Sensor) {
	eng.Register("time-monotonic", "kernel", audit.TimeMonotonic(k))
	eng.RegisterFinal("event-pool", "kernel", func(sim.Time) []string {
		return k.AuditPool()
	})
	// The association and arbitration laws register under names that say
	// which invariant family the protocol actually owes: slotted MACs owe
	// the slot-table bijections and grant-window containment, contention
	// MACs owe membership consistency and channel-access accounting.
	tableLaw, nodeLaw := "member-table", "channel-access"
	if caps.Slotted {
		tableLaw, nodeLaw = "slot-table", "slot-containment"
	}
	eng.Register(tableLaw, "bs", func(sim.Time) []string {
		return base.BS.AuditTable()
	})
	for _, s := range sensors {
		s := s
		eng.Register("frame-conservation", s.Name, func(sim.Time) []string {
			return s.Mac.AuditFrame()
		})
		eng.Register(nodeLaw, s.Name, func(sim.Time) []string {
			return s.Mac.AuditProtocol()
		})
		eng.Register("generation-monotonic", s.Name,
			audit.Monotonic("crash generation", s.Mac.Generation))
		if s.Bat == nil {
			continue
		}
		eng.Register("battery-conservation", s.Name, func(now sim.Time) []string {
			s.Ledger.Flush(now)
			return s.Bat.AuditConservation(s.Ledger.TotalJ())
		})
		eng.Register("battery-dead-sticky", s.Name,
			audit.Monotonic("dead flag", func() uint64 {
				if s.Bat.Dead() {
					return 1
				}
				return 0
			}))
		eng.Register("battery-level-monotonic", s.Name,
			audit.Monotonic("degradation level", func() uint64 {
				return uint64(s.Bat.Level())
			}))
	}
}
