package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/sim"
)

// TestSoakTenMinutes runs the full 5-node BAN for ten simulated minutes
// on a bursty channel with clock drift — the paper's pitch is unattended
// long-term monitoring, so the stack must hold steady state indefinitely:
// no rejoins, energy exactly 10x the one-minute figure, no queue
// blow-ups. Skipped under -short.
func TestSoakTenMinutes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	res, err := Run(Config{
		Variant:       mac.Static,
		Nodes:         5,
		Cycle:         30 * sim.Millisecond,
		App:           AppStreaming,
		SampleRateHz:  205,
		Duration:      10 * sim.Minute,
		Seed:          21,
		ClockDriftPPM: 60,
		Burst:         &channel.BurstModel{PGoodToBad: 0.005, PBadToGood: 0.1, BERBad: 3e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.JoinedAll {
		t.Fatalf("join incomplete")
	}
	for _, n := range res.Nodes {
		if n.Mac.Rejoins != 0 {
			t.Errorf("%s rejoined %d times in steady state", n.Name, n.Mac.Rejoins)
		}
		// 20000 cycles; nearly all beacons heard despite the channel.
		if n.Mac.BeaconsHeard < 19000 {
			t.Errorf("%s heard only %d beacons", n.Name, n.Mac.BeaconsHeard)
		}
		// Energy scales linearly: ~10x the Table 1 row 1 value per node,
		// plus the channel-error overhead (bounded band).
		if mj := n.RadioMJ(); mj < 5200 || mj < 10*549.5*0.95 || mj > 10*549.5*1.15 {
			t.Errorf("%s radio = %.0f mJ over 10 min, want ~5495 (+noise)", n.Name, mj)
		}
		if n.PacketsDropped > n.PacketsSent/10 {
			t.Errorf("%s dropped %d of %d payloads", n.Name, n.PacketsDropped, n.PacketsSent)
		}
	}
	// Delivery stays near-complete over 100k data frames.
	var sent, acked uint64
	for _, n := range res.Nodes {
		sent += n.Mac.DataSent
		acked += n.Mac.DataAcked
	}
	if float64(acked) < 0.98*float64(sent) {
		t.Fatalf("delivery ratio %.3f over the soak", float64(acked)/float64(sent))
	}
}
