package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/audit"
	"repro/internal/sim"
)

// TestSchedulerDifferentialScenarios runs every committed scenario on
// both kernel schedulers — the pooled timer wheel and the retained heap
// reference — and requires bit-identical results: node energies, MAC
// statistics, channel stats, trace events, metrics snapshots, fault
// outcomes and brownout instants. This is the PR's safety net for the
// wheel: any divergence in dispatch order, however subtle, shows up as
// a diff here because every model layer consumes the kernel's order and
// its single rng stream.
func TestSchedulerDifferentialScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite skipped in -short mode")
	}
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenarios found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := ConfigFromJSON(data)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Metrics = true // widen the compared surface
			// Every committed scenario must also audit clean on both
			// schedulers; a violation shows up as an Audit diff or a
			// non-empty summary in the DeepEqual below.
			if cfg.Audit == nil {
				cfg.Audit = &audit.Config{Every: 100 * sim.Millisecond}
			}

			run := func(sched string) Results {
				c := cfg
				c.Scheduler = sched
				res, err := Run(c)
				if err != nil {
					t.Fatalf("%s: %v", sched, err)
				}
				// The scheduler choice is the one intended difference;
				// blank it so DeepEqual compares everything else.
				res.Config.Scheduler = ""
				return res
			}
			wheel := run(SchedulerWheel)
			heap := run(SchedulerHeap)

			if wheel.Audit.Failed() || heap.Audit.Failed() {
				t.Fatalf("invariants violated:\nwheel: %v\nheap:  %v",
					wheel.Audit.Violations, heap.Audit.Violations)
			}

			// Compare the recorders first with a targeted diff (the
			// pointers themselves always differ).
			we, he := wheel.Trace.Events(), heap.Trace.Events()
			if len(we) != len(he) {
				t.Fatalf("trace length: wheel %d, heap %d", len(we), len(he))
			}
			for i := range we {
				if we[i] != he[i] {
					t.Fatalf("trace diverges at event %d:\n  wheel: %+v\n  heap:  %+v",
						i, we[i], he[i])
				}
			}
			wheel.Trace, heap.Trace = nil, nil

			if !reflect.DeepEqual(wheel.Metrics, heap.Metrics) {
				t.Fatal("metrics snapshots differ between schedulers")
			}
			wheel.Metrics, heap.Metrics = nil, nil

			if wheel.TimeToFirstDeath != heap.TimeToFirstDeath {
				t.Fatalf("brownout instants differ: wheel %v, heap %v",
					wheel.TimeToFirstDeath, heap.TimeToFirstDeath)
			}
			if !reflect.DeepEqual(wheel, heap) {
				t.Fatalf("results differ between schedulers:\nwheel: %+v\nheap:  %+v", wheel, heap)
			}
		})
	}
}
