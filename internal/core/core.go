// Package core is the simulation framework's public façade: it assembles
// a complete Body Area Network — base station plus sensor nodes running a
// chosen application over a chosen TDMA variant — runs it for a warm-up
// (join transient) and a measurement window, and reports per-node energy
// split by component and power state, the paper's four loss categories,
// and the protocol statistics.
//
// This is the counterpart of the paper's TOSSIM-based framework (§4): an
// event-driven simulation of the whole OS/MAC/radio stack from which
// E = I·Vdd·t energy figures are extracted per component.
package core

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/approx"
	"repro/internal/audit"
	"repro/internal/battery"
	"repro/internal/body"
	"repro/internal/channel"
	"repro/internal/ecg"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/platform"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/trace"
)

// AppKind selects the node application.
type AppKind string

const (
	// AppStreaming is the 2-channel ECG streaming application (§5.1).
	AppStreaming AppKind = "streaming"
	// AppRpeak is the on-node beat detection application (§5.2).
	AppRpeak AppKind = "rpeak"
	// AppHRV is the on-node heart-rate-variability summariser, the
	// framework's extension one step further down the preprocessing
	// path: one statistics packet per window of beats.
	AppHRV AppKind = "hrv"
	// AppEEG is the 24-channel EEG activity monitor: per-channel
	// amplitude summaries chunked into a burst of frames per window,
	// exercising the ASIC's full channel count.
	AppEEG AppKind = "eeg"
)

// Config describes one BAN scenario.
type Config struct {
	// Variant selects static or dynamic TDMA.
	Variant mac.Variant
	// Protocol selects the MAC protocol by registry name ("static",
	// "dynamic", "csma", "lpl"). Empty derives it from Variant, so
	// historical configs keep working; Validate resolves it.
	Protocol mac.Protocol
	// MACParams carries the protocol's tuning knobs (CSMA backoff
	// bounds, LPL check interval); the zero value selects each
	// protocol's documented defaults.
	MACParams mac.Params
	// Nodes is the number of sensor nodes (the paper's case studies use
	// 1..5).
	Nodes int
	// Cycle is the TDMA cycle length for the static variant; ignored for
	// dynamic TDMA, whose cycle is (Nodes+1) x 10 ms once all joins
	// complete.
	Cycle sim.Time
	// App selects the application.
	App AppKind
	// SampleRateHz is the per-channel sampling rate. For streaming it is
	// the Table 1/2 sweep parameter; for Rpeak it defaults to the
	// algorithm's fixed 200 Hz.
	SampleRateHz float64
	// HeartRateBPM drives the synthetic ECG (default 75, the paper's
	// input).
	HeartRateBPM float64
	// Duration is the measurement window (the paper reports 60 s).
	Duration sim.Time
	// Warmup runs before measurement so joins complete; energy and
	// statistics reset at its end. Default 3 s.
	Warmup sim.Time
	// Seed drives all randomness. Equal (Config, Seed) pairs produce
	// byte-identical results.
	Seed int64
	// BER applies a uniform bit error rate to every link (default 0).
	BER float64
	// Burst, when non-nil, applies a Gilbert-Elliott bursty error
	// process to every link instead of the uniform BER (on-body links
	// fade in runs as the wearer moves). Mutually exclusive with BER.
	Burst *channel.BurstModel
	// Placements assigns each node an on-body site; when set (length
	// must equal Nodes), every link gets the body model's site- and
	// motion-dependent burst process instead of BER/Burst. The base
	// station rides at the hip.
	Placements []body.Site
	// Motion is the wearer's activity level for the body model.
	Motion body.Motion
	// TraceLimit caps recorded trace events (0 = a generous default).
	TraceLimit int
	// StartStagger separates consecutive node power-ons (default 5 ms).
	// Large values let early nodes reach steady state while later ones
	// are still searching — the regime where overhearing and idle
	// listening dominate.
	StartStagger sim.Time
	// ClockDriftPPM gives each node an oscillator error of exactly this
	// magnitude with a per-node random sign (deterministic per seed) —
	// the worst case of a part tolerance band. The beacon guard margins
	// must absorb drift x cycle; crystals sit at tens of ppm, the
	// MSP430 DCO at 1-3%.
	ClockDriftPPM float64
	// Profile overrides the node hardware profile; nil selects
	// platform.IMEC().
	Profile *platform.Profile
	// Faults is the deterministic fault schedule (crashes, link
	// blackouts, interference bursts), with instants measured from
	// simulation start — warmup included.
	Faults []fault.Fault
	// SlotReclaimCycles makes the base station free the slot of a node
	// silent for this many consecutive beacon cycles (0 disables — the
	// default, since sparse-sending applications like HRV legitimately
	// skip many cycles).
	SlotReclaimCycles int
	// Battery, when non-nil, gives every node a live cell of this rating:
	// the per-component energy ledger debits it as the run progresses, and
	// a node whose terminal voltage sags below BrownoutV crashes for good
	// (an emergent brownout fault, reported alongside injected ones).
	Battery *battery.Battery
	// BrownoutV is the supply-rail voltage below which a node browns out.
	// 0 selects the cell's default cutoff. Requires Battery.
	BrownoutV float64
	// Degrade, when non-nil, enables graceful low-battery degradation at
	// the policy's state-of-charge watermarks: duty-cycle stretching,
	// application sample-rate downshift, then beacon-only parking (the
	// node releases its slot back to the base station). Requires Battery.
	Degrade *battery.DegradePolicy
	// Metrics enables the structured observability snapshot: when true,
	// Results.Metrics carries per-(node, component, state) time/energy
	// rows, exact event counters and latency histograms, assembled over
	// the measurement window. Collection never changes the simulation,
	// only what is reported.
	Metrics bool
	// Scheduler selects the kernel's event scheduler: "" or
	// SchedulerWheel for the pooled hierarchical timer wheel (the
	// default), SchedulerHeap for the original binary heap retained as
	// the reference implementation. Both dispatch in the identical
	// (at, seq) order, so results are bit-equal; the heap exists for
	// differential validation, not for production runs.
	Scheduler string
	// MaxEvents bounds the kernel's dispatched-event count over the whole
	// run, warmup included (0 = unlimited). A run that reaches the budget
	// aborts with a *BudgetError instead of spinning forever — the
	// deterministic half of the batch runner's watchdog: equal
	// (Config, Seed) runs trip at the identical event, on either
	// scheduler.
	MaxEvents uint64
	// Interrupt, when non-nil, is polled by the kernel on a fixed
	// dispatch cadence (sim.DefaultPollEvery events) and aborts the run
	// with a *BudgetError when it returns true. It is the external abort
	// hook — wall-clock watchdogs and context cancellation plug in here —
	// and must be a pure observer: it may never touch simulation state,
	// so an armed-but-untripped hook leaves results bit-identical.
	// Never serialized, and stripped from Results.Config so result
	// comparisons stay value-based.
	Interrupt func() bool `json:"-"`
	// Audit, when non-nil, enables the runtime invariant-audit engine:
	// conservation and protocol laws registered by every component
	// (energy/battery books, frame conservation, slot exclusivity, clock
	// and generation monotonicity, event-pool balance) are swept on the
	// configured in-simulation cadence and once more at run end, with
	// violations reported as structured rows in Results.Audit. Audits
	// observe only: a run produces byte-identical results with auditing
	// on or off, apart from Results.Audit itself and the KernelEvents
	// count (the sweep ticks are kernel events).
	Audit *audit.Config
}

// Scheduler values accepted by Config.Scheduler.
const (
	SchedulerWheel = "wheel"
	SchedulerHeap  = "heap"
)

// Validate checks the configuration, applying documented defaults.
func (c *Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("core: Nodes must be positive, got %d", c.Nodes)
	}
	if c.Protocol == "" {
		c.Protocol = c.Variant.Protocol()
	}
	desc, ok := mac.Lookup(c.Protocol)
	if !ok {
		return fmt.Errorf("core: unknown MAC protocol %q", c.Protocol)
	}
	if err := desc.Validate(c.MACParams); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Protocol == mac.ProtoStatic && c.Cycle <= 0 {
		return fmt.Errorf("core: static TDMA needs a positive Cycle")
	}
	if c.Cycle < 0 {
		return fmt.Errorf("core: negative Cycle %v", c.Cycle)
	}
	if c.Protocol == mac.ProtoCSMA && c.Cycle == 0 {
		c.Cycle = mac.DefaultCSMACycle
	}
	// Negative times would reach the kernel as horizons or delays in the
	// past, which it rejects by panicking; scenario files are untrusted
	// input, so the gate is here.
	if c.Warmup < 0 {
		return fmt.Errorf("core: negative Warmup %v", c.Warmup)
	}
	if c.StartStagger < 0 {
		return fmt.Errorf("core: negative StartStagger %v", c.StartStagger)
	}
	if c.SampleRateHz < 0 {
		return fmt.Errorf("core: negative SampleRateHz %v", c.SampleRateHz)
	}
	if c.HeartRateBPM < 0 {
		return fmt.Errorf("core: negative HeartRateBPM %v", c.HeartRateBPM)
	}
	if c.ClockDriftPPM < 0 {
		return fmt.Errorf("core: negative ClockDriftPPM %v", c.ClockDriftPPM)
	}
	if c.TraceLimit < 0 {
		return fmt.Errorf("core: negative TraceLimit %d", c.TraceLimit)
	}
	switch c.App {
	case AppStreaming:
		if c.SampleRateHz <= 0 {
			return fmt.Errorf("core: streaming needs a positive SampleRateHz")
		}
	case AppRpeak, AppHRV:
		if approx.Unset(c.SampleRateHz) {
			c.SampleRateHz = 200
		}
	case AppEEG:
		if approx.Unset(c.SampleRateHz) {
			c.SampleRateHz = 128
		}
	default:
		return fmt.Errorf("core: unknown app %q", c.App)
	}
	if approx.Unset(c.HeartRateBPM) {
		c.HeartRateBPM = 75
	}
	if c.Duration <= 0 {
		return fmt.Errorf("core: Duration must be positive")
	}
	if c.Warmup == 0 {
		c.Warmup = 3 * sim.Second
	}
	if c.BER < 0 || c.BER >= 1 {
		return fmt.Errorf("core: BER %v out of [0,1)", c.BER)
	}
	if c.Burst != nil && c.BER > 0 {
		return fmt.Errorf("core: BER and Burst are mutually exclusive")
	}
	if b := c.Burst; b != nil {
		for _, p := range []float64{b.PGoodToBad, b.PBadToGood} {
			if p < 0 || p > 1 {
				return fmt.Errorf("core: burst transition probability %v out of [0,1]", p)
			}
		}
		for _, ber := range []float64{b.BERGood, b.BERBad} {
			if ber < 0 || ber >= 1 {
				return fmt.Errorf("core: burst BER %v out of [0,1)", ber)
			}
		}
	}
	if len(c.Placements) > 0 {
		if len(c.Placements) != c.Nodes {
			return fmt.Errorf("core: %d placements for %d nodes", len(c.Placements), c.Nodes)
		}
		if c.BER > 0 || c.Burst != nil {
			return fmt.Errorf("core: Placements and BER/Burst are mutually exclusive")
		}
	}
	if c.TraceLimit == 0 {
		c.TraceLimit = 200000
	}
	switch c.Scheduler {
	case "", SchedulerWheel, SchedulerHeap:
	default:
		return fmt.Errorf("core: unknown scheduler %q", c.Scheduler)
	}
	if c.StartStagger == 0 {
		c.StartStagger = 5 * sim.Millisecond
	}
	if c.SlotReclaimCycles < 0 {
		return fmt.Errorf("core: negative SlotReclaimCycles %d", c.SlotReclaimCycles)
	}
	if c.Battery == nil {
		if !approx.Unset(c.BrownoutV) {
			return fmt.Errorf("core: BrownoutV %v without a Battery", c.BrownoutV)
		}
		if c.Degrade != nil {
			return fmt.Errorf("core: Degrade policy without a Battery")
		}
	} else {
		b := *c.Battery
		if b.CapacityMAh <= 0 || b.VoltageV <= 0 {
			return fmt.Errorf("core: battery needs positive capacity and voltage, got %v mAh at %v V", b.CapacityMAh, b.VoltageV)
		}
		if b.Efficiency < 0 || b.Efficiency > 1 {
			return fmt.Errorf("core: battery efficiency %v out of [0,1]", b.Efficiency)
		}
		if approx.Unset(c.BrownoutV) {
			c.BrownoutV = b.DefaultCutoffV()
		}
		// The threshold must be crossable: at or above the fresh-cell
		// voltage the node dies instantly, at or below the exhausted-cell
		// voltage it never browns out (the SOC floor catches it instead,
		// but the configuration is almost certainly a unit mistake).
		if lo, hi := b.VoltageAt(0), b.VoltageAt(1); c.BrownoutV <= lo || c.BrownoutV >= hi {
			return fmt.Errorf("core: BrownoutV %.3g V outside the cell's (%.3g, %.3g) V discharge range", c.BrownoutV, lo, hi)
		}
		if c.Degrade != nil {
			// Validate a copy so a policy value shared across configs is
			// not mutated behind the caller's back.
			p := *c.Degrade
			if err := p.Validate(); err != nil {
				return fmt.Errorf("core: %w", err)
			}
			c.Degrade = &p
		}
	}
	if a := c.Audit; a != nil {
		if a.Every < 0 {
			return fmt.Errorf("core: negative audit check interval %v", a.Every)
		}
		if a.Limit < 0 {
			return fmt.Errorf("core: negative audit violation limit %d", a.Limit)
		}
	}
	// The fault schedule is checked against the full simulated span, so
	// the defaults above (Warmup in particular) must already be applied.
	if err := fault.ValidateSchedule(c.Faults, c.Nodes, c.Warmup+c.Duration); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// NodeResult is the measurement-window outcome for one sensor node.
type NodeResult struct {
	Name   string
	ID     uint8
	Energy energy.Report
	Mac    mac.Stats
	Radio  radio.Stats
	// PacketsSent/Dropped are application-level counters.
	PacketsSent    uint64
	PacketsDropped uint64
	// Beats is the Rpeak detection count (0 for streaming).
	Beats uint64
	// Availability is the fraction of the measurement window the node
	// held a slot (1.0 in a fault-free steady-state run).
	Availability float64
	// DeliveryRatio is acknowledged/sent data frames over the window
	// (1.0 when nothing was sent).
	DeliveryRatio float64
	// Battery is the end-of-run battery summary (nil unless the scenario
	// configures a battery).
	Battery *battery.Report
}

// RadioMJ reports the node's radio energy in millijoules — the paper's
// "E Radio" column.
func (n NodeResult) RadioMJ() float64 {
	c, _ := n.Energy.Component(platform.ComponentRadio)
	return c.EnergyMJ()
}

// MCUMJ reports the node's microcontroller energy in millijoules — the
// paper's "E µC" column.
func (n NodeResult) MCUMJ() float64 {
	c, _ := n.Energy.Component(platform.ComponentMCU)
	return c.EnergyMJ()
}

// ASICMJ reports the front-end energy (excluded from the paper's
// validation tables but part of the node budget).
func (n NodeResult) ASICMJ() float64 {
	c, _ := n.Energy.Component(platform.ComponentASIC)
	return c.EnergyMJ()
}

// TotalMJ reports radio + MCU, the quantity Figure 4 compares.
func (n NodeResult) TotalMJ() float64 { return n.RadioMJ() + n.MCUMJ() }

// Results is the outcome of one scenario run.
type Results struct {
	Config   Config
	Nodes    []NodeResult
	BSEnergy energy.Report
	BSStats  mac.BSStats
	Channel  channel.Stats
	// Trace is the in-memory event log. Excluded from serialization:
	// journaled point records carry every numeric result bit-exactly but
	// not the trace, so a restored point has a nil Trace.
	Trace *trace.Recorder `json:"-"`
	// JoinedAll reports whether every node held a slot at measurement
	// start.
	JoinedAll bool
	// Faults reports the per-fault outcomes, in schedule order (nil when
	// the scenario injects none).
	Faults []fault.Outcome
	// Metrics is the structured observability snapshot (nil unless
	// Config.Metrics is set).
	Metrics *metrics.Snapshot
	// KernelEvents counts the discrete events the kernel dispatched over
	// the whole run — the simulator's own work metric, which the runner's
	// progress/throughput reporting feeds from.
	KernelEvents uint64
	// TimeToFirstDeath is the instant (from simulation start) the first
	// node browned out; 0 when every node survived the run.
	TimeToFirstDeath sim.Time
	// NetworkLifetime is the instant the network fell below half its
	// nodes alive — the standard WSN lifetime criterion; 0 when at least
	// half the nodes outlived the run.
	NetworkLifetime sim.Time
	// Audit is the invariant-audit summary (nil unless Config.Audit is
	// set). A run whose laws all held has Audit.Failed() == false.
	Audit *audit.Summary
}

// Node returns the result for the paper's reference node (ID 1).
func (r Results) Node() NodeResult { return r.Nodes[0] }

// Run builds and executes the scenario.
func Run(cfg Config) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, &ConfigError{Err: err}
	}
	prof := platform.IMEC()
	if cfg.Profile != nil {
		prof = *cfg.Profile
	}

	k := sim.NewKernel(cfg.Seed)
	if cfg.Scheduler == SchedulerHeap {
		k = sim.NewHeapKernel(cfg.Seed)
	}
	if cfg.MaxEvents > 0 || cfg.Interrupt != nil {
		k.SetWatchdog(cfg.MaxEvents, cfg.Interrupt, 0)
	}
	ch := channel.New(k)
	tracer := trace.New(cfg.TraceLimit)

	baseOpts := []node.BaseOption{node.WithBaseProtocol(cfg.Protocol, cfg.MACParams)}
	if cfg.SlotReclaimCycles > 0 {
		baseOpts = append(baseOpts, node.WithReclaimAfter(cfg.SlotReclaimCycles))
	}
	base := node.NewBase(k, ch, tracer, cfg.Variant, cfg.Cycle, 0, baseOpts...)

	signal := ecg.NewGenerator(ecg.Params{
		HeartRateBPM: cfg.HeartRateBPM,
		JitterFrac:   0.02,
		NoiseAmp:     0.02,
		BaselineAmp:  0.05,
		Seed:         cfg.Seed,
	})
	eeg := ecg.NewEEGGenerator(ecg.EEGParams{Seed: cfg.Seed})

	sensors := make([]*node.Sensor, cfg.Nodes)
	apps := make([]app.App, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		opts := []node.Option{node.WithProtocol(cfg.Protocol, cfg.MACParams)}
		if cfg.ClockDriftPPM > 0 {
			drift := cfg.ClockDriftPPM
			if k.Rand().Intn(2) == 0 {
				drift = -drift
			}
			opts = append(opts, node.WithClockDrift(drift))
		}
		if cfg.Battery != nil {
			opts = append(opts, node.WithBattery(*cfg.Battery, cfg.BrownoutV, cfg.Degrade))
		}
		s := node.NewSensor(k, ch, tracer, uint8(i+1), prof, cfg.Variant, opts...)
		switch cfg.App {
		case AppStreaming:
			s.AttachApp(func(env app.Env) app.App {
				return app.NewStreaming(env, app.StreamingConfig{
					SampleRateHz: cfg.SampleRateHz,
					Channels:     2,
					Signal:       signal,
				})
			}, tracer)
		case AppRpeak:
			s.AttachApp(func(env app.Env) app.App {
				return app.NewRpeak(env, app.RpeakConfig{
					SampleRateHz: cfg.SampleRateHz,
					Channels:     2,
					Signal:       signal,
				})
			}, tracer)
		case AppHRV:
			s.AttachApp(func(env app.Env) app.App {
				return app.NewHRV(env, app.HRVConfig{
					SampleRateHz: cfg.SampleRateHz,
					Signal:       signal,
				})
			}, tracer)
		case AppEEG:
			s.AttachApp(func(env app.Env) app.App {
				return app.NewEEGPower(env, app.EEGPowerConfig{
					Channels:     24,
					SampleRateHz: cfg.SampleRateHz,
					Signal:       eeg,
				})
			}, tracer)
		}
		sensors[i] = s
		apps[i] = s.App
	}

	if cfg.BER > 0 || cfg.Burst != nil {
		names := []string{"bs"}
		for _, s := range sensors {
			names = append(names, s.Name)
		}
		link := channel.Link{Connected: true, BER: cfg.BER, Burst: cfg.Burst}
		for _, from := range names {
			for _, to := range names {
				if from != to {
					ch.SetLink(from, to, link)
				}
			}
		}
	}
	if len(cfg.Placements) > 0 {
		// The base station rides at the hip; every path gets the body
		// model for its site pair under the configured motion.
		site := map[string]body.Site{"bs": body.Hip}
		for i, s := range sensors {
			site[s.Name] = cfg.Placements[i]
		}
		for fromName, fromSite := range site {
			for toName, toSite := range site {
				if fromName == toName {
					continue
				}
				m := body.LinkModel(fromSite, toSite, cfg.Motion)
				ch.SetLink(fromName, toName, channel.Link{Connected: true, Burst: &m})
			}
		}
	}

	// The fault schedule is armed before power-on so every injection
	// event holds a deterministic position in the kernel's order. A
	// battery also wants the injector: brownouts report through the same
	// outcome list as injected faults.
	var inj *fault.Injector
	if len(cfg.Faults) > 0 || cfg.Battery != nil {
		inj = fault.New(k, ch, tracer)
		for _, s := range sensors {
			s := s
			inj.AddNode(s.ID, fault.NodeHooks{
				Crash:    s.Crash,
				Reboot:   s.Reboot,
				OnJoined: s.Mac.OnJoined,
				Stats:    s.Mac.Stats,
			})
			if cfg.Battery != nil {
				id := s.ID
				s.OnBrownout(func() { inj.NoteBrownout(id) })
			}
		}
		inj.Install(cfg.Faults)
	}

	// The audit engine observes the assembled network; its sweep ticks
	// are ordinary kernel events, and every registered law holds at any
	// event boundary, so the tick's position among same-instant events
	// does not matter.
	var eng *audit.Engine
	if cfg.Audit != nil {
		desc, _ := mac.Lookup(cfg.Protocol)
		eng = audit.New(k, *cfg.Audit)
		registerAudits(eng, k, desc.Caps, base, sensors)
		eng.Start()
	}

	// Power-on: the base station first, then the nodes staggered a few
	// milliseconds apart (same power strip, slightly different boot
	// times) so their first SSRs rarely collide.
	k.Schedule(0, func(*sim.Kernel) { base.Start() })
	for i, s := range sensors {
		s := s
		k.Schedule(sim.Time(i+1)*cfg.StartStagger, func(*sim.Kernel) { s.Start() })
	}

	// Warm-up: joins and pipeline fill.
	k.RunUntil(cfg.Warmup)
	if err := budgetErr(k); err != nil {
		return Results{}, err
	}
	joinedAll := true
	for _, s := range sensors {
		if !s.Mac.Joined() {
			joinedAll = false
		}
	}
	for _, s := range sensors {
		s.ResetAccounting(k.Now())
	}
	base.ResetAccounting(k.Now())
	// Counters and histograms cover the measurement window, like the
	// component statistics; the event log keeps the join transient.
	tracer.ResetDerived()

	// Measurement window.
	k.RunUntil(cfg.Warmup + cfg.Duration)
	if err := budgetErr(k); err != nil {
		return Results{}, err
	}

	// Results must stay value-comparable (reflect.DeepEqual treats any
	// non-nil func field as unequal) and serializable, so the abort hook
	// never rides along in the embedded config.
	cfg.Interrupt = nil
	res := Results{
		Config:    cfg,
		BSStats:   base.BS.Stats(),
		Channel:   ch.Stats(),
		Trace:     tracer,
		JoinedAll: joinedAll,
	}
	if inj != nil {
		res.Faults = inj.Finalize()
	}
	res.BSEnergy = base.FinalizeEnergy(k.Now())
	for i, s := range sensors {
		nr := NodeResult{
			Name:   s.Name,
			ID:     s.ID,
			Energy: s.FinalizeEnergy(k.Now()),
			Mac:    s.Mac.Stats(),
			Radio:  s.Radio.Stats(),
		}
		av := float64(s.Mac.JoinedTime()) / float64(cfg.Duration)
		if av < 0 {
			av = 0
		} else if av > 1 {
			av = 1
		}
		nr.Availability = av
		nr.DeliveryRatio = 1
		if nr.Mac.DataSent > 0 {
			nr.DeliveryRatio = float64(nr.Mac.DataAcked) / float64(nr.Mac.DataSent)
		}
		nr.Battery = s.FinalizeBattery(k.Now())
		switch a := apps[i].(type) {
		case *app.Streaming:
			nr.PacketsSent = a.PacketsSent()
			nr.PacketsDropped = a.PacketsDropped()
		case *app.Rpeak:
			nr.PacketsSent = a.PacketsSent()
			nr.PacketsDropped = a.PacketsDropped()
			nr.Beats = a.BeatsDetected()
		case *app.HRV:
			nr.PacketsSent = a.WindowsSent()
			nr.PacketsDropped = a.PacketsDropped()
			nr.Beats = a.BeatsDetected()
		case *app.EEGPower:
			nr.PacketsSent = a.PacketsSent()
			nr.PacketsDropped = a.PacketsDropped()
		}
		res.Nodes = append(res.Nodes, nr)
	}
	// Lifetime figures from the brownout instants. Deaths are collected in
	// node-ID order and sorted by time, so the result is independent of
	// everything but the battery histories themselves.
	var deaths []sim.Time
	for _, nr := range res.Nodes {
		if nr.Battery != nil && nr.Battery.Died {
			deaths = append(deaths, nr.Battery.DiedAt)
		}
	}
	if len(deaths) > 0 {
		sort.Slice(deaths, func(i, j int) bool { return deaths[i] < deaths[j] })
		res.TimeToFirstDeath = deaths[0]
		// The network is alive while at least half its nodes are; the
		// lifetime ends when the (floor(N/2)+1)-th node dies.
		if need := cfg.Nodes/2 + 1; len(deaths) >= need {
			res.NetworkLifetime = deaths[need-1]
		}
	}
	res.KernelEvents = k.Executed()
	if eng != nil {
		res.Audit = eng.Finish(k.Now())
	}
	if cfg.Metrics {
		res.Metrics = assembleMetrics(&res)
	}
	return res, nil
}
