package core

import (
	"math"
	"testing"

	"repro/internal/body"
	"repro/internal/channel"
	"repro/internal/energy"
	"repro/internal/mac"
	"repro/internal/paperdata"
	"repro/internal/platform"
	"repro/internal/sim"
)

// runRow executes one published-table sweep point for the standard 60 s
// window and returns the reference node's result.
func runRow(t *testing.T, variant mac.Variant, row paperdata.Row, app AppKind) NodeResult {
	t.Helper()
	cfg := Config{
		Variant:      variant,
		Nodes:        row.Nodes,
		App:          app,
		SampleRateHz: row.SampleRateHz,
		Duration:     paperdata.Window,
		Seed:         1,
	}
	if variant == mac.Static {
		cfg.Cycle = row.Cycle
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.JoinedAll {
		t.Fatalf("%s: nodes failed to join during warmup", row.Label)
	}
	return res.Node()
}

// checkBand asserts a reproduced value lies within tol percent of the
// paper's measurement.
func checkBand(t *testing.T, label, quantity string, got, real, tol float64) {
	t.Helper()
	errPct := math.Abs(got-real) / real * 100
	if errPct > tol {
		t.Errorf("%s %s = %.1f mJ, paper real %.1f (%.1f%% > %.1f%% tolerance)",
			label, quantity, got, real, errPct, tol)
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{
		Variant: mac.Static, Nodes: 5, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: sim.Second,
	}
	if err := (&base).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Cycle = 0 },
		func(c *Config) { c.App = "teleport" },
		func(c *Config) { c.SampleRateHz = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.BER = 1.5 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if err := (&c).Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Rpeak defaults its rate.
	c := base
	c.App = AppRpeak
	c.SampleRateHz = 0
	if err := (&c).Validate(); err != nil || c.SampleRateHz != 200 {
		t.Fatalf("rpeak defaults: err=%v fs=%v", err, c.SampleRateHz)
	}
}

// TestTable1Reproduction checks every Table 1 row against the paper's
// measurements: ECG streaming over static TDMA, sampling frequency sweep.
func TestTable1Reproduction(t *testing.T) {
	for _, row := range paperdata.Table1().Rows {
		n := runRow(t, mac.Static, row, AppStreaming)
		checkBand(t, row.Label, "radio", n.RadioMJ(), row.RadioRealMJ, 8)
		checkBand(t, row.Label, "mcu", n.MCUMJ(), row.MCURealMJ, 10)
		// Against the paper's own simulator the µC model is tighter.
		checkBand(t, row.Label, "mcu-vs-papersim", n.MCUMJ(), row.MCUSimMJ, 4)
	}
}

// TestTable2Reproduction checks ECG streaming over dynamic TDMA, network
// size sweep.
func TestTable2Reproduction(t *testing.T) {
	for _, row := range paperdata.Table2().Rows {
		n := runRow(t, mac.Dynamic, row, AppStreaming)
		checkBand(t, row.Label, "radio", n.RadioMJ(), row.RadioRealMJ, 8)
		checkBand(t, row.Label, "mcu", n.MCUMJ(), row.MCURealMJ, 15)
	}
}

// TestTable3Reproduction checks Rpeak over static TDMA, cycle sweep.
func TestTable3Reproduction(t *testing.T) {
	for _, row := range paperdata.Table3().Rows {
		n := runRow(t, mac.Static, row, AppRpeak)
		checkBand(t, row.Label, "radio", n.RadioMJ(), row.RadioRealMJ, 8)
		checkBand(t, row.Label, "mcu", n.MCUMJ(), row.MCURealMJ, 8)
		if n.Beats == 0 {
			t.Errorf("%s: no beats detected", row.Label)
		}
	}
}

// TestTable4Reproduction checks Rpeak over dynamic TDMA, network size
// sweep. The n=2 row gets a wider band: the paper's Tables 2 and 4
// disagree with each other there (for identical beacon geometry, Table
// 2's n=2 row implies a per-cycle beacon cost ~9% below what Table 4's
// n=2 row implies), so no single calibration satisfies both; our event
// simulator and the independent closed-form model agree with each other
// to <0.1% on that point and split the difference against the paper.
func TestTable4Reproduction(t *testing.T) {
	for _, row := range paperdata.Table4().Rows {
		tol := 8.0
		if row.Label == "n=2" {
			tol = 12.0
		}
		n := runRow(t, mac.Dynamic, row, AppRpeak)
		checkBand(t, row.Label, "radio", n.RadioMJ(), row.RadioRealMJ, tol)
		checkBand(t, row.Label, "mcu", n.MCUMJ(), row.MCURealMJ, 8)
	}
}

// TestFigure4EnergySaving reproduces the paper's headline: moving Rpeak
// onto the node cuts total (radio+µC) energy by ~65%.
func TestFigure4EnergySaving(t *testing.T) {
	stream := runRow(t, mac.Static, paperdata.Table1().Rows[0], AppStreaming) // 205Hz/30ms
	rpeak := runRow(t, mac.Static, paperdata.Table3().Rows[3], AppRpeak)      // 120ms
	saving := 1 - rpeak.TotalMJ()/stream.TotalMJ()
	if saving < 0.55 || saving > 0.75 {
		t.Fatalf("energy saving = %.0f%%, paper reports ~65%%", saving*100)
	}
	// Absolute totals near the paper's quoted 710.8 and 246.2 mJ.
	checkBand(t, "fig4", "streaming total", stream.TotalMJ(), paperdata.StreamingTotalRealMJ, 8)
	checkBand(t, "fig4", "rpeak total", rpeak.TotalMJ(), paperdata.RpeakTotalRealMJ, 8)
}

// TestShapeMonotonicity asserts the qualitative claims: radio energy
// rises with sampling frequency (streaming/static) and falls with network
// size (dynamic).
func TestShapeMonotonicity(t *testing.T) {
	var prev float64
	for i, row := range paperdata.Table1().Rows {
		n := runRow(t, mac.Static, row, AppStreaming)
		if i > 0 && n.RadioMJ() >= prev {
			t.Fatalf("radio energy not decreasing with cycle: row %d", i)
		}
		prev = n.RadioMJ()
	}
	prev = math.Inf(1)
	for i, row := range paperdata.Table4().Rows {
		n := runRow(t, mac.Dynamic, row, AppRpeak)
		if n.RadioMJ() >= prev {
			t.Fatalf("dynamic radio energy not decreasing with nodes: row %d", i)
		}
		prev = n.RadioMJ()
	}
}

// TestRpeakBeatsMatchHeartRate: the Rpeak node detects ~75 beats/min per
// channel and reports them to the base station.
func TestRpeakBeatsMatchHeartRate(t *testing.T) {
	res, err := Run(Config{
		Variant: mac.Static, Nodes: 1, Cycle: 120 * sim.Millisecond,
		App: AppRpeak, Duration: 60 * sim.Second, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := res.Node()
	// 2 channels x ~75 beats over the 60s window.
	if n.Beats < 140 || n.Beats > 160 {
		t.Fatalf("beats = %d, want ~150", n.Beats)
	}
	if n.Mac.DataSent < n.Beats-n.PacketsDropped-5 {
		t.Fatalf("beats %d but only %d packets sent (%d dropped)",
			n.Beats, n.Mac.DataSent, n.PacketsDropped)
	}
	if res.BSStats.DataReceived < n.Mac.DataAcked {
		t.Fatalf("bs received %d < acked %d", res.BSStats.DataReceived, n.Mac.DataAcked)
	}
}

// TestPreprocessingHierarchy: each step down the on-node preprocessing
// path (stream raw -> beat events -> HRV windows) cuts radio energy, the
// trajectory §5.2 starts.
func TestPreprocessingHierarchy(t *testing.T) {
	run := func(app AppKind, cycle sim.Time, fs float64) NodeResult {
		res, err := Run(Config{
			Variant: mac.Static, Nodes: 5, Cycle: cycle,
			App: app, SampleRateHz: fs,
			Duration: 60 * sim.Second, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Node()
	}
	stream := run(AppStreaming, 30*sim.Millisecond, 205)
	rpeak := run(AppRpeak, 120*sim.Millisecond, 200)
	hrv := run(AppHRV, 120*sim.Millisecond, 200)
	if !(hrv.RadioMJ() < rpeak.RadioMJ() && rpeak.RadioMJ() < stream.RadioMJ()) {
		t.Fatalf("radio hierarchy broken: stream=%.1f rpeak=%.1f hrv=%.1f",
			stream.RadioMJ(), rpeak.RadioMJ(), hrv.RadioMJ())
	}
	// HRV sends roughly one packet per 16 beats per channel-equivalent.
	if hrv.PacketsSent == 0 || hrv.PacketsSent > 8 {
		t.Fatalf("hrv windows over 60s = %d, want ~4", hrv.PacketsSent)
	}
	if hrv.Beats < 65 || hrv.Beats > 85 {
		t.Fatalf("hrv beats = %d, want ~75 (single lead)", hrv.Beats)
	}
}

// TestClockDriftEnergyNeutralAtCrystalGrade: 50 ppm drift leaves the
// Table 1 estimate essentially unchanged.
func TestClockDriftEnergyNeutralAtCrystalGrade(t *testing.T) {
	base, err := Run(Config{
		Variant: mac.Static, Nodes: 5, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205,
		Duration: 30 * sim.Second, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := Run(Config{
		Variant: mac.Static, Nodes: 5, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205,
		Duration: 30 * sim.Second, Seed: 6, ClockDriftPPM: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if drifted.Node().Mac.BeaconsMissed != 0 {
		t.Fatalf("crystal drift missed beacons")
	}
	delta := math.Abs(drifted.Node().RadioMJ()-base.Node().RadioMJ()) / base.Node().RadioMJ()
	if delta > 0.01 {
		t.Fatalf("50 ppm drift moved radio energy by %.2f%%", delta*100)
	}
}

// TestEEGMonitorOverBAN: the 24-channel EEG activity monitor runs over
// the full network stack — three frames per one-second window draining
// through the single TDMA slot across consecutive cycles.
func TestEEGMonitorOverBAN(t *testing.T) {
	res, err := Run(Config{
		Variant: mac.Static, Nodes: 2, Cycle: 60 * sim.Millisecond,
		App: AppEEG, Duration: 30 * sim.Second, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.JoinedAll {
		t.Fatalf("nodes failed to join")
	}
	n := res.Node()
	// ~30 windows x 3 chunks = ~90 frames per node.
	if n.PacketsSent < 80 || n.PacketsSent > 95 {
		t.Fatalf("eeg frames = %d, want ~90", n.PacketsSent)
	}
	if n.Mac.DataAcked < n.Mac.DataSent-3 {
		t.Fatalf("frames lost: sent=%d acked=%d", n.Mac.DataSent, n.Mac.DataAcked)
	}
	if n.PacketsDropped > 0 {
		t.Fatalf("queue dropped %d frames; 3-frame bursts must fit the queue", n.PacketsDropped)
	}
	// The 24-channel front-end dominates the sampling load: the MCU is
	// busier than in the 2-channel streaming case at equal rates.
	if n.MCUMJ() < 56 { // 30s power-save floor is 55.4 mJ
		t.Fatalf("µC energy %.1f mJ implausibly at the floor", n.MCUMJ())
	}
}

// TestClockScalingTradeoff: the knob the paper could not turn (§5.1, the
// ASIC pinned the MCU at maximum speed). With the platform's high
// power-save floor (0.66 mA), running slower is cheaper per cycle as
// long as deadlines hold; crank the clock down far enough and the
// sampling load saturates the core and the protocol falls apart.
func TestClockScalingTradeoff(t *testing.T) {
	runAt := func(hz float64) (core NodeResult, joined bool) {
		prof := platform.IMEC()
		prof.MCU = prof.MCU.AtClock(hz)
		res, err := Run(Config{
			Variant: mac.Static, Nodes: 1, Cycle: 120 * sim.Millisecond,
			App: AppRpeak, Duration: 30 * sim.Second, Seed: 9,
			Profile: &prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Node(), res.JoinedAll
	}
	full, okFull := runAt(8e6)
	slow, okSlow := runAt(1e6)
	if !okFull || !okSlow {
		t.Fatalf("join failed: 8MHz=%v 1MHz=%v", okFull, okSlow)
	}
	// At 1 MHz the node still keeps up (2940-cycle samples take 2.9 ms
	// of the 5 ms period) and the µC spends less energy: the dynamic
	// current shrank 8x while the power-save floor is unchanged.
	if slow.Beats < full.Beats-10 {
		t.Fatalf("1MHz dropped beats: %d vs %d", slow.Beats, full.Beats)
	}
	if slow.MCUMJ() >= full.MCUMJ() {
		t.Fatalf("1MHz µC %.1f mJ not below 8MHz %.1f mJ", slow.MCUMJ(), full.MCUMJ())
	}
	// At 250 kHz each sample needs 11.8 ms of a 5 ms budget: overload.
	over, okOver := runAt(0.25e6)
	healthy := okOver && over.Mac.BeaconsMissed == 0 &&
		over.Beats >= full.Beats-10 && over.Mac.DataAcked >= over.Mac.DataSent-2
	if healthy {
		t.Fatalf("250kHz clock should visibly degrade the node: %+v", over.Mac)
	}
}

// TestEnergyConservation: per-component state residencies cover the
// measurement window exactly.
func TestEnergyConservation(t *testing.T) {
	res, err := Run(Config{
		Variant: mac.Static, Nodes: 2, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 10 * sim.Second, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		for _, comp := range n.Energy.Components {
			var total sim.Time
			for _, sr := range comp.States {
				total += sr.Time
			}
			// Meters may run marginally past the horizon for in-flight
			// work, never under it.
			if total < 10*sim.Second {
				t.Fatalf("%s/%s residencies %v < window", n.Name, comp.Name, total)
			}
			if total > 10*sim.Second+50*sim.Millisecond {
				t.Fatalf("%s/%s residencies %v way past window", n.Name, comp.Name, total)
			}
		}
	}
}

// TestLossAccountingSane: attributed losses are positive and bounded by
// the radio energy.
func TestLossAccountingSane(t *testing.T) {
	res, err := Run(Config{
		Variant: mac.Static, Nodes: 5, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 30 * sim.Second, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := res.Node()
	radioJ := n.RadioMJ() / 1e3
	control := n.Energy.Losses[energy.LossControl]
	if control <= 0 {
		t.Fatalf("no control overhead attributed")
	}
	if control > radioJ {
		t.Fatalf("control loss %.3f J exceeds radio energy %.3f J", control, radioJ)
	}
	for cat, j := range n.Energy.Losses {
		if j < 0 {
			t.Fatalf("negative loss %v = %v", cat, j)
		}
	}
}

// TestBERCausesCollisionLossesAndRetries: a noisy channel produces CRC
// drops, ack misses and retransmissions, and the collision loss category
// fills up — the §4.2 machinery the paper added over stock TOSSIM.
func TestBERCausesCollisionLossesAndRetries(t *testing.T) {
	res, err := Run(Config{
		Variant: mac.Static, Nodes: 3, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 30 * sim.Second,
		Seed: 2, BER: 2e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := res.Node()
	if res.Channel.CorruptCopies == 0 {
		t.Fatalf("no corrupted frames at BER 2e-4")
	}
	if n.Mac.AckMissed == 0 && n.Radio.CRCDrops == 0 {
		t.Fatalf("noise produced neither ack misses nor CRC drops at the node")
	}
	if n.Energy.Losses[energy.LossCollision] <= 0 {
		t.Fatalf("no collision-category loss attributed under noise")
	}
	noisy := n.RadioMJ()

	clean, err := Run(Config{
		Variant: mac.Static, Nodes: 3, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 30 * sim.Second, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy <= clean.Node().RadioMJ() {
		t.Fatalf("noise did not increase radio energy: %.1f <= %.1f",
			noisy, clean.Node().RadioMJ())
	}
}

// TestBurstyChannelClustersDataLoss: under a Gilbert-Elliott channel of
// the same average BER as a uniform one, losses arrive in runs — more
// back-to-back retry exhaustion — while the overall energy penalty stays
// in the same regime.
func TestBurstyChannelClustersDataLoss(t *testing.T) {
	burst := &channel.BurstModel{PGoodToBad: 0.02, PBadToGood: 0.08, BERGood: 0, BERBad: 2e-3}
	bursty, err := Run(Config{
		Variant: mac.Static, Nodes: 3, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 60 * sim.Second,
		Seed: 4, Burst: burst,
	})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Run(Config{
		Variant: mac.Static, Nodes: 3, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 60 * sim.Second,
		Seed: 4, BER: burst.MeanBER(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, u := bursty.Node().Mac, uniform.Node().Mac
	if b.AckMissed == 0 || u.AckMissed == 0 {
		t.Fatalf("no losses to compare: bursty=%d uniform=%d", b.AckMissed, u.AckMissed)
	}
	// Retry exhaustion (a frame dropped after MaxRetries) needs
	// consecutive bad frames; burstiness produces disproportionately
	// more of it per ack miss.
	burstDropRate := float64(b.AckMissed-b.Retries) / float64(b.AckMissed)
	uniDropRate := float64(u.AckMissed-u.Retries) / float64(u.AckMissed)
	if burstDropRate <= uniDropRate {
		t.Logf("note: bursty drop rate %.3f vs uniform %.3f (seed-dependent)", burstDropRate, uniDropRate)
	}
	// Both cost more radio energy than a clean channel.
	clean, err := Run(Config{
		Variant: mac.Static, Nodes: 3, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 60 * sim.Second, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bursty.Node().RadioMJ() <= clean.Node().RadioMJ() {
		t.Fatalf("bursty channel did not cost energy")
	}
}

// TestBodyPlacements: the on-body link model degrades the hard paths —
// an ankle node suffers more beacon misses than the chest node while the
// network keeps functioning.
func TestBodyPlacements(t *testing.T) {
	placements := []body.Site{body.Chest, body.LeftAnkle}
	res, err := Run(Config{
		Variant: mac.Static, Nodes: 2, Cycle: 30 * sim.Millisecond,
		App: AppRpeak, Duration: 60 * sim.Second, Seed: 8,
		Placements: placements, Motion: body.Running,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.JoinedAll {
		t.Fatalf("deployment failed to join")
	}
	chest, ankle := res.Nodes[0], res.Nodes[1]
	chestTrouble := chest.Mac.BeaconsMissed + chest.Mac.AckMissed
	ankleTrouble := ankle.Mac.BeaconsMissed + ankle.Mac.AckMissed
	if ankleTrouble <= chestTrouble {
		t.Fatalf("ankle (%d) should struggle more than chest (%d)", ankleTrouble, chestTrouble)
	}
	// Both still deliver their beats.
	for _, n := range res.Nodes {
		if n.Mac.DataAcked < 130 {
			t.Fatalf("%s delivered only %d beats", n.Name, n.Mac.DataAcked)
		}
	}
	// Config validation: placement count must match.
	bad := Config{Variant: mac.Static, Nodes: 3, Cycle: 30 * sim.Millisecond,
		App: AppRpeak, Duration: sim.Second, Placements: placements}
	if err := (&bad).Validate(); err == nil {
		t.Fatalf("mismatched placement count accepted")
	}
	conflicting := Config{Variant: mac.Static, Nodes: 2, Cycle: 30 * sim.Millisecond,
		App: AppRpeak, Duration: sim.Second, Placements: placements, BER: 1e-4}
	if err := (&conflicting).Validate(); err == nil {
		t.Fatalf("placements + BER accepted")
	}
}

// TestDeterminism: identical (config, seed) produce identical energies
// and statistics; different seeds differ somewhere.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Variant: mac.Dynamic, Nodes: 3, App: AppRpeak,
		Duration: 20 * sim.Second, Seed: 7, BER: 1e-4,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Node().RadioMJ() != b.Node().RadioMJ() || a.Node().MCUMJ() != b.Node().MCUMJ() {
		t.Fatalf("same seed diverged: %v vs %v", a.Node(), b.Node())
	}
	if a.Node().Mac != b.Node().Mac {
		t.Fatalf("same seed mac stats diverged")
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Node().RadioMJ() == c.Node().RadioMJ() &&
		a.Channel == c.Channel {
		t.Fatalf("different seeds produced identical stochastic outcomes")
	}
}

// TestASICConstantDraw: the front-end integrates its constant 10.5 mW
// (630 mJ over 60 s), the value §5 excludes from its tables.
func TestASICConstantDraw(t *testing.T) {
	res, err := Run(Config{
		Variant: mac.Static, Nodes: 1, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 60 * sim.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Node().ASICMJ(); math.Abs(got-630) > 1 {
		t.Fatalf("ASIC = %.1f mJ over 60s, want 630", got)
	}
}

// TestBaseStationEnergyReported: the BS ledger is populated (the paper
// does not validate it, but the framework reports it).
func TestBaseStationEnergyReported(t *testing.T) {
	res, err := Run(Config{
		Variant: mac.Static, Nodes: 2, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 10 * sim.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bsRadio, ok := res.BSEnergy.Component(platform.ComponentRadio)
	if !ok || bsRadio.EnergyJ <= 0 {
		t.Fatalf("base station radio energy missing")
	}
	// The BS listens nearly continuously: it must dwarf a node's radio.
	if bsRadio.EnergyMJ() < res.Node().RadioMJ() {
		t.Fatalf("BS radio %.1f mJ below node radio %.1f mJ", bsRadio.EnergyMJ(), res.Node().RadioMJ())
	}
}

// TestOverhearingDuringJoin: while searching for beacons a node hears
// other nodes' data (address-filtered): overhearing loss is attributed.
func TestOverhearingDuringJoin(t *testing.T) {
	res, err := Run(Config{
		Variant: mac.Static, Nodes: 5, Cycle: 30 * sim.Millisecond,
		App: AppStreaming, SampleRateHz: 205, Duration: 10 * sim.Second,
		Seed: 4, Warmup: sim.Millisecond, // measure from power-on: join included
		// Stagger power-ons by 2 s: late joiners listen continuously
		// while early nodes already stream, the overhearing regime.
		StartStagger: 2 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalOverhear, totalIdle float64
	for _, n := range res.Nodes {
		totalOverhear += n.Energy.Losses[energy.LossOverhearing]
		totalIdle += n.Energy.Losses[energy.LossIdleListening]
	}
	if totalIdle <= 0 {
		t.Fatalf("join phase attributed no idle listening")
	}
	if totalOverhear <= 0 {
		t.Fatalf("join phase attributed no overhearing (nodes listen while others stream)")
	}
}
