package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/sim"
)

func TestConfigFromJSON(t *testing.T) {
	data := []byte(`{
        "mac": "dynamic",
        "nodes": 3,
        "app": "rpeak",
        "duration": "30s",
        "warmup": "2s",
        "seed": 7,
        "clockDriftPPM": 50,
        "burst": {"PGoodToBad": 0.02, "PBadToGood": 0.1, "BERBad": 0.001}
    }`)
	cfg, err := ConfigFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Variant != mac.Dynamic || cfg.Nodes != 3 || cfg.App != AppRpeak {
		t.Fatalf("decoded %+v", cfg)
	}
	if cfg.Duration != 30*sim.Second || cfg.Warmup != 2*sim.Second {
		t.Fatalf("durations: %v %v", cfg.Duration, cfg.Warmup)
	}
	if cfg.Burst == nil || cfg.Burst.BERBad != 0.001 {
		t.Fatalf("burst: %+v", cfg.Burst)
	}
	if cfg.ClockDriftPPM != 50 || cfg.Seed != 7 {
		t.Fatalf("scalars: %+v", cfg)
	}
	// The decoded config runs.
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.JoinedAll {
		t.Fatalf("scenario did not reach steady state")
	}
}

func TestConfigFromJSONErrors(t *testing.T) {
	cases := []string{
		`{`,                                  // malformed
		`{"mac": "aloha"}`,                   // unknown protocol
		`{"duration": "yesterday"}`,          // bad duration
		`{"mac": {"protocol": "tokenring"}}`, // unknown protocol, object form
		`{"mac": {"protocol": "static", "minBE": 3}}`,            // backoff knob on a TDMA MAC
		`{"mac": {"protocol": "csma", "minBE": 9}}`,              // exponent beyond the cap
		`{"mac": {"protocol": "csma", "minBE": -1}}`,             // negative exponent
		`{"mac": {"protocol": "csma", "minBE": 6, "maxBE": 4}}`,  // inverted bounds
		`{"mac": {"protocol": "csma", "maxBackoffs": 11}}`,       // beyond the retry cap
		`{"mac": {"protocol": "csma", "checkInterval": "50ms"}}`, // LPL knob on CSMA
		`{"mac": {"protocol": "lpl", "maxBE": 5}}`,               // CSMA knob on LPL
		`{"mac": {"protocol": "lpl", "checkInterval": "-10ms"}}`, // negative cadence
		`{"mac": {"protocol": "lpl", "checkInterval": "2s"}}`,    // beyond the 1 s ceiling
	}
	for i, s := range cases {
		if _, err := ConfigFromJSON([]byte(s)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestConfigFromJSONMacForms(t *testing.T) {
	// Bare string and object forms decode to the same selection.
	bare, err := ConfigFromJSON([]byte(`{"mac": "csma"}`))
	if err != nil {
		t.Fatal(err)
	}
	obj, err := ConfigFromJSON([]byte(`{"mac": {"protocol": "csma"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Protocol != mac.ProtoCSMA || obj.Protocol != mac.ProtoCSMA {
		t.Fatalf("protocols: bare=%q obj=%q", bare.Protocol, obj.Protocol)
	}
	if bare.MACParams != obj.MACParams {
		t.Fatalf("params differ: %+v vs %+v", bare.MACParams, obj.MACParams)
	}

	// Tuning knobs ride the object form.
	cfg, err := ConfigFromJSON([]byte(
		`{"mac": {"protocol": "csma", "minBE": 2, "maxBE": 6, "maxBackoffs": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	want := mac.Params{MinBE: 2, MaxBE: 6, MaxBackoffs: 5}
	if cfg.MACParams != want {
		t.Fatalf("params = %+v, want %+v", cfg.MACParams, want)
	}

	lpl, err := ConfigFromJSON([]byte(
		`{"mac": {"protocol": "lpl", "checkInterval": "50ms"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if lpl.Protocol != mac.ProtoLPL || lpl.MACParams.CheckInterval != 50*sim.Millisecond {
		t.Fatalf("lpl decode: %+v", lpl.MACParams)
	}

	// The legacy names still populate Variant for callers that read it.
	dyn, err := ConfigFromJSON([]byte(`{"mac": "dynamic"}`))
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Variant != mac.Dynamic || dyn.Protocol != mac.ProtoDynamic {
		t.Fatalf("dynamic decode: variant=%v protocol=%q", dyn.Variant, dyn.Protocol)
	}
}

func TestConfigJSONMacRoundTrip(t *testing.T) {
	in := Config{
		Protocol:     mac.ProtoCSMA,
		MACParams:    mac.Params{MinBE: 2, MaxBE: 6},
		Nodes:        3,
		App:          AppStreaming,
		SampleRateHz: 205,
		Duration:     10 * sim.Second,
	}
	data, err := ConfigToJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ConfigFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Protocol != in.Protocol || out.MACParams != in.MACParams {
		t.Fatalf("round trip: protocol=%q params=%+v\nencoded: %s", out.Protocol, out.MACParams, data)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	in := Config{
		Variant:      mac.Static,
		Nodes:        5,
		Cycle:        30 * sim.Millisecond,
		App:          AppStreaming,
		SampleRateHz: 205,
		Duration:     60 * sim.Second,
		Seed:         1,
		Burst:        &channel.BurstModel{PGoodToBad: 0.1, PBadToGood: 0.2, BERBad: 1e-3},
	}
	data, err := ConfigToJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ConfigFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Variant != in.Variant || out.Cycle != in.Cycle || out.App != in.App ||
		out.SampleRateHz != in.SampleRateHz || out.Duration != in.Duration {
		t.Fatalf("round trip: %+v", out)
	}
	if out.Burst == nil || *out.Burst != *in.Burst {
		t.Fatalf("burst round trip: %+v", out.Burst)
	}
}
