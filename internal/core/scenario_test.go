package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/sim"
)

func TestConfigFromJSON(t *testing.T) {
	data := []byte(`{
        "mac": "dynamic",
        "nodes": 3,
        "app": "rpeak",
        "duration": "30s",
        "warmup": "2s",
        "seed": 7,
        "clockDriftPPM": 50,
        "burst": {"PGoodToBad": 0.02, "PBadToGood": 0.1, "BERBad": 0.001}
    }`)
	cfg, err := ConfigFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Variant != mac.Dynamic || cfg.Nodes != 3 || cfg.App != AppRpeak {
		t.Fatalf("decoded %+v", cfg)
	}
	if cfg.Duration != 30*sim.Second || cfg.Warmup != 2*sim.Second {
		t.Fatalf("durations: %v %v", cfg.Duration, cfg.Warmup)
	}
	if cfg.Burst == nil || cfg.Burst.BERBad != 0.001 {
		t.Fatalf("burst: %+v", cfg.Burst)
	}
	if cfg.ClockDriftPPM != 50 || cfg.Seed != 7 {
		t.Fatalf("scalars: %+v", cfg)
	}
	// The decoded config runs.
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.JoinedAll {
		t.Fatalf("scenario did not reach steady state")
	}
}

func TestConfigFromJSONErrors(t *testing.T) {
	cases := []string{
		`{`,                         // malformed
		`{"mac": "csma"}`,           // unknown variant
		`{"duration": "yesterday"}`, // bad duration
	}
	for i, s := range cases {
		if _, err := ConfigFromJSON([]byte(s)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	in := Config{
		Variant:      mac.Static,
		Nodes:        5,
		Cycle:        30 * sim.Millisecond,
		App:          AppStreaming,
		SampleRateHz: 205,
		Duration:     60 * sim.Second,
		Seed:         1,
		Burst:        &channel.BurstModel{PGoodToBad: 0.1, PBadToGood: 0.2, BERBad: 1e-3},
	}
	data, err := ConfigToJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ConfigFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Variant != in.Variant || out.Cycle != in.Cycle || out.App != in.App ||
		out.SampleRateHz != in.SampleRateHz || out.Duration != in.Duration {
		t.Fatalf("round trip: %+v", out)
	}
	if out.Burst == nil || *out.Burst != *in.Burst {
		t.Fatalf("burst round trip: %+v", out.Burst)
	}
}
