package core

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrBudgetExceeded matches any *BudgetError via errors.Is, regardless
// of cause.
var ErrBudgetExceeded = errors.New("core: budget exceeded")

// BudgetError reports that a run was aborted by its watchdog before the
// measurement window completed. Cause distinguishes the deterministic
// event budget ("events" — equal (Config, Seed) runs trip at the
// identical event) from the external interrupt hook ("interrupt" —
// wall-clock deadlines, context cancellation). Events and At snapshot
// the kernel when it stopped.
type BudgetError struct {
	Cause  string
	Events uint64
	At     sim.Time
}

// Budget-trip causes carried in BudgetError.Cause.
const (
	BudgetEvents    = "events"
	BudgetInterrupt = "interrupt"
)

func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: %s budget exceeded after %d events at %v", e.Cause, e.Events, e.At)
}

// Is makes errors.Is(err, ErrBudgetExceeded) match any BudgetError.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// ConfigError marks a validation failure: the configuration itself is
// wrong, so re-running the point can never succeed — the batch runner's
// retry policy treats it as permanent. Error returns the wrapped
// message unchanged, so existing message-matching callers keep working.
type ConfigError struct {
	Err error
}

func (e *ConfigError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying validation error to errors.Is/As.
func (e *ConfigError) Unwrap() error { return e.Err }

// budgetErr converts a kernel watchdog trip into the point error the
// batch layer classifies on; nil when the kernel ran to completion.
func budgetErr(k *sim.Kernel) error {
	switch k.Tripped() {
	case sim.TripEvents:
		return &BudgetError{Cause: BudgetEvents, Events: k.Executed(), At: k.Now()}
	case sim.TripInterrupt:
		return &BudgetError{Cause: BudgetInterrupt, Events: k.Executed(), At: k.Now()}
	}
	return nil
}
