package core

import (
	"testing"

	"repro/internal/app"
	"repro/internal/channel"
	"repro/internal/codec"
	"repro/internal/ecg"
	"repro/internal/mac"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestEndToEndSignalFidelity drives the full stack — generator, ASIC,
// OS, packing, FIFO, air, CRC, drain, base station — and verifies that
// the ECG waveform reconstructed from the received payloads is the
// generator's sample stream, bit-exact and gap-free. The energy model
// only means something if the data path it prices actually works.
func TestEndToEndSignalFidelity(t *testing.T) {
	k := sim.NewKernel(17)
	ch := channel.New(k)
	tracer := trace.New(0)
	base := node.NewBase(k, ch, tracer, mac.Static, 60*sim.Millisecond, 0)
	sig := ecg.NewGenerator(ecg.Params{HeartRateBPM: 75, NoiseAmp: 0.02, Seed: 17})

	const fs = 100.0
	s := node.NewSensor(k, ch, tracer, 1, platform.IMEC(), mac.Static)
	s.AttachApp(func(env app.Env) app.App {
		return app.NewStreaming(env, app.StreamingConfig{
			SampleRateHz: fs, Channels: 2, Signal: sig,
		})
	}, tracer)

	k.Schedule(0, func(*sim.Kernel) { base.Start() })
	k.Schedule(5*sim.Millisecond, func(*sim.Kernel) { s.Start() })
	k.RunUntil(20 * sim.Second)

	recs := base.BS.Received()
	if len(recs) < 100 {
		t.Fatalf("only %d payloads arrived", len(recs))
	}
	// Reconstruct the two channel streams from consecutive payloads.
	var ch0, ch1 []codec.Sample
	for _, rec := range recs {
		samples, err := codec.Unpack(rec.Payload, 12)
		if err != nil {
			t.Fatalf("payload undecodable: %v", err)
		}
		for i := 0; i < 12; i += 2 {
			ch0 = append(ch0, samples[i])
			ch1 = append(ch1, samples[i+1])
		}
	}
	// Bit-exact match against the generator output from acquisition 0:
	// no loss, no reordering, no duplication anywhere on the path.
	for i := range ch0 {
		if want := sig.SampleAt(0, int64(i), fs); ch0[i] != want {
			t.Fatalf("ch0 sample %d = %d, want %d", i, ch0[i], want)
		}
		if want := sig.SampleAt(1, int64(i), fs); ch1[i] != want {
			t.Fatalf("ch1 sample %d = %d, want %d", i, ch1[i], want)
		}
	}
	// And the stream kept pace with acquisition: every produced payload
	// reached the base station (1 payload per cycle at 100 Hz x 2ch =
	// 16.7 samples... 12 samples/payload -> payload every 60ms = cycle).
	if float64(len(ch0)) < 0.9*fs*19 {
		t.Fatalf("stream starved: %d samples in ~19s at %g Hz", len(ch0), fs)
	}
	_ = packet.AddrBSData
}

// TestEndToEndBeatReports drives the Rpeak stack and verifies the beat
// packets the base station receives decode to the paper's "beat occurred
// Lag samples ago" semantics and reconstruct the heart rate.
func TestEndToEndBeatReports(t *testing.T) {
	k := sim.NewKernel(19)
	ch := channel.New(k)
	tracer := trace.New(0)
	base := node.NewBase(k, ch, tracer, mac.Static, 120*sim.Millisecond, 0)
	sig := ecg.NewGenerator(ecg.Params{HeartRateBPM: 75, Seed: 19})

	s := node.NewSensor(k, ch, tracer, 1, platform.IMEC(), mac.Static)
	s.AttachApp(func(env app.Env) app.App {
		return app.NewRpeak(env, app.RpeakConfig{Channels: 1, Signal: sig})
	}, tracer)

	k.Schedule(0, func(*sim.Kernel) { base.Start() })
	k.Schedule(5*sim.Millisecond, func(*sim.Kernel) { s.Start() })
	k.RunUntil(62 * sim.Second)

	var beatsAt []float64
	for _, rec := range base.BS.Received() {
		beat, err := packet.UnmarshalBeat(rec.Payload)
		if err != nil {
			t.Fatalf("non-beat payload at BS: %v", err)
		}
		if beat.Channel != 0 {
			t.Fatalf("beat on channel %d, only channel 0 is monitored", beat.Channel)
		}
		// Reconstruct the beat instant: packet arrival minus transport
		// latency is imprecise, but the INTERVALS between successive
		// reported beats recover the heart rate.
		beatsAt = append(beatsAt, rec.At.Seconds()-float64(beat.Lag)/200.0)
	}
	if len(beatsAt) < 60 {
		t.Fatalf("only %d beats reported in ~60s at 75 bpm", len(beatsAt))
	}
	// Mean interval ~0.8s (75 bpm).
	var sum float64
	for i := 1; i < len(beatsAt); i++ {
		sum += beatsAt[i] - beatsAt[i-1]
	}
	mean := sum / float64(len(beatsAt)-1)
	if mean < 0.7 || mean > 0.9 {
		t.Fatalf("reconstructed RR interval %.3fs, want ~0.8", mean)
	}
}
