package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/sim"
)

// ExampleRun simulates the paper's headline operating point — a 5-node
// BAN streaming 2-channel ECG at 205 Hz over a 30 ms static TDMA — and
// prints the reference node's energy split, the Table 1 row 1 quantity.
func ExampleRun() {
	res, err := core.Run(core.Config{
		Variant:      mac.Static,
		Nodes:        5,
		Cycle:        30 * sim.Millisecond,
		App:          core.AppStreaming,
		SampleRateHz: 205,
		Duration:     60 * sim.Second,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := res.Node()
	fmt.Printf("radio %.1f mJ, mcu %.1f mJ over 60s (paper measured 540.6 and 170.2)\n",
		n.RadioMJ(), n.MCUMJ())
	// Output:
	// radio 549.5 mJ, mcu 162.2 mJ over 60s (paper measured 540.6 and 170.2)
}
