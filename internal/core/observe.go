package core

import (
	"fmt"

	"repro/internal/battery"
	"repro/internal/metrics"
)

// assembleMetrics builds the structured observability snapshot from an
// assembled Results value: per-(node, component, state) residency rows
// from the energy reports, the trace-derived counters and latency
// histograms, plus the MAC/radio/channel statistics as namespaced
// counters. Everything comes from data the run already produced, so
// enabling metrics cannot perturb the simulation.
func assembleMetrics(res *Results) *metrics.Snapshot {
	energies := make([]metrics.NodeEnergy, 0, len(res.Nodes)+1)
	energies = append(energies, metrics.NodeEnergy{Node: "bs", Report: res.BSEnergy})
	var extraStates []metrics.StateRow
	var extra []metrics.CounterRow
	for _, nr := range res.Nodes {
		energies = append(energies, metrics.NodeEnergy{Node: nr.Name, Report: nr.Energy})
		if rep := nr.Battery; rep != nil {
			// Per-degradation-level residency and consumption, plus a
			// residual-charge row, rendered alongside the component state
			// rows so one snapshot carries the whole energy story.
			for lvl := 0; lvl < battery.NumLevels; lvl++ {
				if rep.TimeIn[lvl] == 0 && rep.UsedJ[lvl] <= 0 {
					continue
				}
				extraStates = append(extraStates, metrics.StateRow{
					Node:      nr.Name,
					Component: "battery",
					State:     battery.Level(lvl).String(),
					Time:      rep.TimeIn[lvl],
					EnergyMJ:  rep.UsedJ[lvl] * 1e3,
				})
			}
			extraStates = append(extraStates, metrics.StateRow{
				Node:      nr.Name,
				Component: "battery",
				State:     "residual",
				EnergyMJ:  rep.RemainingJ * 1e3,
			})
			var browned uint64
			if rep.Died {
				browned = 1
			}
			extra = append(extra, statRows(nr.Name, "battery", [][2]any{
				{"brownouts", browned},
				{"level-transitions", rep.Transitions},
			})...)
		}
		extra = append(extra, statRows(nr.Name, "mac", [][2]any{
			{"beacons-heard", nr.Mac.BeaconsHeard},
			{"beacons-missed", nr.Mac.BeaconsMissed},
			{"ssr-sent", nr.Mac.SSRSent},
			{"data-sent", nr.Mac.DataSent},
			{"data-acked", nr.Mac.DataAcked},
			{"data-dropped", nr.Mac.DataDropped},
			{"ack-missed", nr.Mac.AckMissed},
			{"retries", nr.Mac.Retries},
			{"queue-drops", nr.Mac.QueueDrops},
			{"rejoins", nr.Mac.Rejoins},
			{"slots-skipped", nr.Mac.SlotsSkipped},
			{"releases-sent", nr.Mac.ReleasesSent},
		})...)
		extra = append(extra, statRows(nr.Name, "radio", [][2]any{
			{"tx-frames", nr.Radio.TxFrames},
			{"rx-accepted", nr.Radio.RxAccepted},
			{"crc-drops", nr.Radio.CRCDrops},
			{"addr-drops", nr.Radio.AddrDrops},
		})...)
		extra = append(extra, statRows(nr.Name, "app", [][2]any{
			{"packets-sent", nr.PacketsSent},
			{"packets-dropped", nr.PacketsDropped},
			{"beats", nr.Beats},
		})...)
	}
	extra = append(extra, statRows("bs", "bs", [][2]any{
		{"beacons-sent", res.BSStats.BeaconsSent},
		{"data-received", res.BSStats.DataReceived},
		{"acks-sent", res.BSStats.AcksSent},
		{"ssr-received", res.BSStats.SSRReceived},
		{"ssr-rejected", res.BSStats.SSRRejected},
		{"stray-frames", res.BSStats.StrayFrames},
		{"slots-reclaimed", res.BSStats.SlotsReclaimed},
		{"slots-released", res.BSStats.SlotsReleased},
	})...)
	extra = append(extra, statRows("channel", "channel", [][2]any{
		{"transmissions", res.Channel.Transmissions},
		{"collisions", res.Channel.Collisions},
		{"deliveries", res.Channel.Deliveries},
		{"corrupt-copies", res.Channel.CorruptCopies},
		{"missed-start", res.Channel.MissedStart},
		{"jammed-frames", res.Channel.JammedFrames},
		{"truncated", res.Channel.Truncated},
		{"blackout-drops", res.Channel.BlackoutDrops},
	})...)
	return metrics.Assemble(res.Trace, energies, extraStates, extra, res.KernelEvents)
}

// statRows turns a component's statistics into namespaced counter rows,
// skipping zero values to keep snapshots dense.
func statRows(node, prefix string, pairs [][2]any) []metrics.CounterRow {
	var rows []metrics.CounterRow
	for _, p := range pairs {
		v := p[1].(uint64)
		if v == 0 {
			continue
		}
		rows = append(rows, metrics.CounterRow{
			Node:  node,
			Name:  fmt.Sprintf("%s.%s", prefix, p[0].(string)),
			Value: v,
		})
	}
	return rows
}
