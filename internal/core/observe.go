package core

import (
	"fmt"

	"repro/internal/metrics"
)

// assembleMetrics builds the structured observability snapshot from an
// assembled Results value: per-(node, component, state) residency rows
// from the energy reports, the trace-derived counters and latency
// histograms, plus the MAC/radio/channel statistics as namespaced
// counters. Everything comes from data the run already produced, so
// enabling metrics cannot perturb the simulation.
func assembleMetrics(res *Results) *metrics.Snapshot {
	energies := make([]metrics.NodeEnergy, 0, len(res.Nodes)+1)
	energies = append(energies, metrics.NodeEnergy{Node: "bs", Report: res.BSEnergy})
	var extra []metrics.CounterRow
	for _, nr := range res.Nodes {
		energies = append(energies, metrics.NodeEnergy{Node: nr.Name, Report: nr.Energy})
		extra = append(extra, statRows(nr.Name, "mac", [][2]any{
			{"beacons-heard", nr.Mac.BeaconsHeard},
			{"beacons-missed", nr.Mac.BeaconsMissed},
			{"ssr-sent", nr.Mac.SSRSent},
			{"data-sent", nr.Mac.DataSent},
			{"data-acked", nr.Mac.DataAcked},
			{"ack-missed", nr.Mac.AckMissed},
			{"retries", nr.Mac.Retries},
			{"queue-drops", nr.Mac.QueueDrops},
			{"rejoins", nr.Mac.Rejoins},
		})...)
		extra = append(extra, statRows(nr.Name, "radio", [][2]any{
			{"tx-frames", nr.Radio.TxFrames},
			{"rx-accepted", nr.Radio.RxAccepted},
			{"crc-drops", nr.Radio.CRCDrops},
			{"addr-drops", nr.Radio.AddrDrops},
		})...)
		extra = append(extra, statRows(nr.Name, "app", [][2]any{
			{"packets-sent", nr.PacketsSent},
			{"packets-dropped", nr.PacketsDropped},
			{"beats", nr.Beats},
		})...)
	}
	extra = append(extra, statRows("bs", "bs", [][2]any{
		{"beacons-sent", res.BSStats.BeaconsSent},
		{"data-received", res.BSStats.DataReceived},
		{"acks-sent", res.BSStats.AcksSent},
		{"ssr-received", res.BSStats.SSRReceived},
		{"ssr-rejected", res.BSStats.SSRRejected},
		{"stray-frames", res.BSStats.StrayFrames},
		{"slots-reclaimed", res.BSStats.SlotsReclaimed},
	})...)
	extra = append(extra, statRows("channel", "channel", [][2]any{
		{"transmissions", res.Channel.Transmissions},
		{"collisions", res.Channel.Collisions},
		{"deliveries", res.Channel.Deliveries},
		{"corrupt-copies", res.Channel.CorruptCopies},
		{"missed-start", res.Channel.MissedStart},
		{"jammed-frames", res.Channel.JammedFrames},
		{"truncated", res.Channel.Truncated},
		{"blackout-drops", res.Channel.BlackoutDrops},
	})...)
	return metrics.Assemble(res.Trace, energies, extra, res.KernelEvents)
}

// statRows turns a component's statistics into namespaced counter rows,
// skipping zero values to keep snapshots dense.
func statRows(node, prefix string, pairs [][2]any) []metrics.CounterRow {
	var rows []metrics.CounterRow
	for _, p := range pairs {
		v := p[1].(uint64)
		if v == 0 {
			continue
		}
		rows = append(rows, metrics.CounterRow{
			Node:  node,
			Name:  fmt.Sprintf("%s.%s", prefix, p[0].(string)),
			Value: v,
		})
	}
	return rows
}
