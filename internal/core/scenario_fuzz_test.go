package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzLoadScenario hammers the scenario JSON loader: arbitrary input
// must either decode cleanly or return an error — never panic — and a
// successfully decoded config must survive an encode/decode round trip
// unchanged. The corpus is seeded from the real scenario files under
// scenarios/, so mutations start from every construct the schema
// actually uses (duration strings, burst models, drift).
//
// Run with: go test -fuzz FuzzLoadScenario ./internal/core
func FuzzLoadScenario(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatal("no scenario seed files found under scenarios/")
	}
	for _, p := range files {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Adversarial shapes the on-disk corpus doesn't cover.
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	// MAC selection: every registered protocol in bare-string form, the
	// object form with tuning knobs, and shapes the loader must reject
	// (unknown protocols, out-of-range or cross-protocol parameters).
	f.Add([]byte(`{"mac":"csma"}`))
	f.Add([]byte(`{"mac":"lpl","nodes":2,"duration":"5s"}`))
	f.Add([]byte(`{"mac":"aloha"}`))
	f.Add([]byte(`{"mac":{"protocol":"csma","minBE":2,"maxBE":6,"maxBackoffs":5}}`))
	f.Add([]byte(`{"mac":{"protocol":"lpl","checkInterval":"50ms"}}`))
	f.Add([]byte(`{"mac":{"protocol":"csma","minBE":9,"maxBE":-1}}`))
	f.Add([]byte(`{"mac":{"protocol":"lpl","checkInterval":"-10ms"}}`))
	f.Add([]byte(`{"mac":{"protocol":"lpl","checkInterval":"2s"}}`))
	f.Add([]byte(`{"mac":{"protocol":"static","maxBackoffs":1}}`))
	f.Add([]byte(`{"mac":{"protocol":"csma","checkInterval":"100ms"}}`))
	f.Add([]byte(`{"mac":12}`))
	f.Add([]byte(`{"cycle":12345,"duration":9}`))
	f.Add([]byte(`{"cycle":"-5ms","duration":"-1s","warmup":"-1s","startStagger":"-1ms"}`))
	f.Add([]byte(`{"burst":{"pGoodToBad":1e308,"berBad":-1}}`))
	f.Add([]byte(`{"nodes":-1,"sampleRateHz":1e999}`))
	// Fault schedules: valid mixes plus windows the validator must reject.
	f.Add([]byte(`{"nodes":2,"duration":"5s","faults":[` +
		`{"kind":"crash","node":1,"at":"1s","reboot_after":"500ms"},` +
		`{"kind":"blackout","from":"node2","to":"bs","at":"2s","until":"3s"},` +
		`{"kind":"interference","at":"4s","until":"4500ms"}]}`))
	f.Add([]byte(`{"faults":[{"kind":"meteor","at":"1s"}]}`))
	f.Add([]byte(`{"faults":[{"kind":"crash","node":0,"at":"-1s","reboot_after":"-2s"}]}`))
	f.Add([]byte(`{"faults":[{"kind":"blackout","from":"bs","to":"bs","at":"9s","until":"1s"}]}`))
	f.Add([]byte(`{"slotReclaimCycles":-3,"faults":[{"kind":"crash","node":1,"at":"1s"},{"kind":"crash","node":1,"at":"1s"}]}`))
	// Battery lifecycle: presets with scaling, explicit ratings, brownout
	// thresholds the curve cannot cross, policy knobs on and off a cell.
	f.Add([]byte(`{"nodes":2,"duration":"5s","battery":{"cell":"cr2032","capacityScale":1e-3},` +
		`"brownoutV":2.1,"degradePolicy":{"stretchSOC":0.4,"stretchEvery":3,"downshiftSOC":0.2,"beaconOnlySOC":0.06}}`))
	f.Add([]byte(`{"battery":{"capacityMAh":160,"voltageV":3.7,"efficiency":0.9}}`))
	f.Add([]byte(`{"battery":{"cell":"unobtainium"}}`))
	f.Add([]byte(`{"battery":{"cell":"cr2032"},"brownoutV":9.9}`))
	f.Add([]byte(`{"battery":{"cell":"cr2032"},"brownoutV":-1}`))
	f.Add([]byte(`{"brownoutV":2.2}`))
	f.Add([]byte(`{"degradePolicy":{"stretchSOC":0.1,"downshiftSOC":0.2}}`))
	f.Add([]byte(`{"battery":{"cell":"lipo160","capacityScale":-1},"degradePolicy":{"stretchEvery":1}}`))
	f.Add([]byte(`{"faults":[{"kind":"brownout","node":1,"at":"1s"}]}`))
	// Audit block: defaulted, explicit, and cadences the loader must
	// reject (zero or negative would stall the sweep loop).
	f.Add([]byte(`{"nodes":1,"duration":"5s","audit":{}}`))
	f.Add([]byte(`{"nodes":1,"duration":"5s","audit":{"checkInterval":"100ms","limit":50}}`))
	f.Add([]byte(`{"audit":{"checkInterval":"0s"}}`))
	f.Add([]byte(`{"audit":{"checkInterval":"-250ms"}}`))
	f.Add([]byte(`{"audit":{"checkInterval":"fast"}}`))
	f.Add([]byte(`{"audit":{"limit":-1}}`))
	// Observability fields: the metrics switch and trace ring cap.
	f.Add([]byte(`{"nodes":2,"duration":"5s","metrics":true,"traceLimit":100}`))
	f.Add([]byte(`{"metrics":false,"traceLimit":-1}`))
	f.Add([]byte(`{"metrics":1,"traceLimit":"many"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ConfigFromJSON(data)
		if err != nil {
			return // rejecting malformed input is the contract
		}

		// Re-encoding a decoded config must succeed and decode back to
		// the same value (the schema loses nothing it accepts).
		out, err := ConfigToJSON(cfg)
		if err != nil {
			t.Fatalf("ConfigToJSON failed on decoded config: %v\ninput: %q", err, data)
		}
		back, err := ConfigFromJSON(out)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded: %s", err, out)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Fatalf("round trip changed the config:\n was %+v\n got %+v\n encoded: %s", cfg, back, out)
		}

		// Validation applies defaults or rejects — it must not panic,
		// and whatever it accepts must carry non-negative times (the
		// kernel panics on negative horizons, so Validate is the gate).
		if err := cfg.Validate(); err == nil {
			if cfg.Duration < 0 || cfg.Warmup < 0 || cfg.Cycle < 0 || cfg.StartStagger < 0 {
				t.Fatalf("Validate accepted negative times: %+v", cfg)
			}
		}
	})
}
