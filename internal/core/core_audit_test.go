package core

import (
	"reflect"
	"testing"

	"repro/internal/audit"
	"repro/internal/battery"
	"repro/internal/fault"
	"repro/internal/mac"
	"repro/internal/sim"
)

// chaosAuditConfig is a deliberately hostile scenario — lossy channel,
// clock drift, a crash with reboot, a blackout, slot reclamation and a
// battery small enough to degrade — under a fast audit cadence, so the
// sweeps observe the system mid-join, mid-retry, mid-crash and mid-death.
func chaosAuditConfig() Config {
	cell := battery.CR2032()
	cell.CapacityMAh *= 4e-5
	pol := battery.DefaultDegradePolicy()
	return Config{
		Variant:           mac.Dynamic,
		Nodes:             3,
		App:               AppRpeak,
		Duration:          3 * sim.Second,
		Warmup:            sim.Second,
		Seed:              42,
		BER:               2e-4,
		ClockDriftPPM:     200,
		SlotReclaimCycles: 8,
		Battery:           &cell,
		Degrade:           &pol,
		Faults: []fault.Fault{
			{Kind: fault.KindCrash, Node: 2, At: 1500 * sim.Millisecond,
				RebootAfter: 400 * sim.Millisecond},
			{Kind: fault.KindBlackout, From: "node1", To: "bs",
				At: 2200 * sim.Millisecond, Until: 2600 * sim.Millisecond},
		},
		Audit: &audit.Config{Every: 50 * sim.Millisecond},
	}
}

// TestAuditCleanUnderChaos runs the hostile scenario with every invariant
// registered and requires a clean bill: the laws must hold at every sweep
// instant, through crashes, reboots, retries, reclaims and brownouts.
func TestAuditCleanUnderChaos(t *testing.T) {
	res, err := Run(chaosAuditConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit == nil {
		t.Fatal("audit enabled but Results.Audit is nil")
	}
	if res.Audit.Failed() {
		t.Fatalf("invariants violated:\n%v", res.Audit.Violations)
	}
	if res.Audit.Checks == 0 {
		t.Fatal("no invariant sweeps ran")
	}
	// The scenario must actually exercise the interesting paths, or the
	// clean bill is vacuous.
	var retries uint64
	for _, n := range res.Nodes {
		retries += n.Mac.Retries
	}
	if retries == 0 {
		t.Fatal("no retries anywhere at BER 2e-4")
	}
	if res.TimeToFirstDeath == 0 {
		t.Fatal("the scaled-down cell never browned out")
	}
}

// TestAuditObserverOnly requires byte-identical results with auditing on
// and off, apart from Results.Audit itself and the kernel event count
// (the sweep ticks are events). This is the engine's core contract: it
// observes, it never perturbs.
func TestAuditObserverOnly(t *testing.T) {
	cfg := chaosAuditConfig()
	cfg.Metrics = true

	with := cfg
	without := cfg
	without.Audit = nil

	resWith, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	resWithout, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	if resWithout.Audit != nil {
		t.Fatal("audit disabled but Results.Audit is set")
	}
	if resWith.KernelEvents <= resWithout.KernelEvents {
		t.Fatalf("audited run dispatched %d events, unaudited %d: sweep ticks missing",
			resWith.KernelEvents, resWithout.KernelEvents)
	}

	// Blank the intended differences, then everything else must match.
	we, wo := resWith.Trace.Events(), resWithout.Trace.Events()
	if len(we) != len(wo) {
		t.Fatalf("trace length: audited %d, unaudited %d", len(we), len(wo))
	}
	for i := range we {
		if we[i] != wo[i] {
			t.Fatalf("trace diverges at event %d:\n  audited:   %+v\n  unaudited: %+v",
				i, we[i], wo[i])
		}
	}
	resWith.Trace, resWithout.Trace = nil, nil
	resWith.Audit = nil
	resWith.Config.Audit, resWithout.Config.Audit = nil, nil
	resWith.KernelEvents, resWithout.KernelEvents = 0, 0
	// The metrics snapshot mirrors the kernel event count; blank that one
	// field too (the row tables must still match exactly).
	resWith.Metrics.KernelEvents, resWithout.Metrics.KernelEvents = 0, 0
	if !reflect.DeepEqual(resWith, resWithout) {
		t.Fatalf("auditing perturbed the run:\n  audited:   %+v\n  unaudited: %+v",
			resWith, resWithout)
	}
}

// TestAuditScenarioJSON covers the scenario-file surface: the block
// decodes, round-trips, applies defaults, and rejects a non-positive
// cadence.
func TestAuditScenarioJSON(t *testing.T) {
	cfg, err := ConfigFromJSON([]byte(
		`{"nodes":1,"duration":"5s","audit":{"checkInterval":"100ms","limit":9}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Audit == nil || cfg.Audit.Every != 100*sim.Millisecond || cfg.Audit.Limit != 9 {
		t.Fatalf("decoded audit block: %+v", cfg.Audit)
	}
	data, err := ConfigToJSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ConfigFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Audit, back.Audit) {
		t.Fatalf("audit block round trip: %+v vs %+v", cfg.Audit, back.Audit)
	}

	// An empty block selects the engine defaults at Run time.
	cfg, err = ConfigFromJSON([]byte(`{"nodes":1,"duration":"5s","audit":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Audit == nil || cfg.Audit.Every != 0 {
		t.Fatalf("empty audit block: %+v", cfg.Audit)
	}

	for _, bad := range []string{
		`{"audit":{"checkInterval":"0s"}}`,
		`{"audit":{"checkInterval":"-250ms"}}`,
	} {
		if _, err := ConfigFromJSON([]byte(bad)); err == nil {
			t.Errorf("loader accepted %s", bad)
		}
	}
	bad := Config{Nodes: 1, App: AppRpeak, Duration: sim.Second,
		Audit: &audit.Config{Limit: -1}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a negative audit limit")
	}
	bad.Audit = &audit.Config{Every: -sim.Second}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a negative audit interval")
	}
}
