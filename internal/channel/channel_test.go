package channel

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

// fakeRadio implements Transceiver for channel tests.
type fakeRadio struct {
	id        string
	listening bool
	since     sim.Time
	got       []Corruption
	images    [][]byte
}

func (f *fakeRadio) ChannelID() string { return f.id }
func (f *fakeRadio) ListeningSince() (sim.Time, bool) {
	return f.since, f.listening
}
func (f *fakeRadio) Deliver(image []byte, cause Corruption) {
	f.got = append(f.got, cause)
	f.images = append(f.images, image)
}

func setup() (*sim.Kernel, *Channel, *fakeRadio, *fakeRadio, *fakeRadio) {
	k := sim.NewKernel(5)
	c := New(k)
	a := &fakeRadio{id: "a", listening: true}
	b := &fakeRadio{id: "b", listening: true}
	bs := &fakeRadio{id: "bs", listening: true}
	c.Attach(a)
	c.Attach(b)
	c.Attach(bs)
	return k, c, a, b, bs
}

func img() []byte {
	return packet.Frame{Dest: packet.AddrBSData, Payload: []byte{1, 2, 3, 4}}.Encode()
}

func TestCleanDeliveryToAllListeners(t *testing.T) {
	k, c, a, b, bs := setup()
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Run()
	if len(a.got) != 0 {
		t.Fatalf("sender received its own frame")
	}
	for _, r := range []*fakeRadio{b, bs} {
		if len(r.got) != 1 || r.got[0] != Clean {
			t.Fatalf("radio %s got %v, want one clean copy", r.id, r.got)
		}
	}
	// Clean copies pass the receiver-side CRC.
	_, ok, err := packet.Decode(bs.images[0])
	if err != nil || !ok {
		t.Fatalf("clean copy failed CRC: ok=%v err=%v", ok, err)
	}
	st := c.Stats()
	if st.Transmissions != 1 || st.Deliveries != 2 || st.Collisions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverlapCorruptsBoth(t *testing.T) {
	k, c, a, b, bs := setup()
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Schedule(50*sim.Microsecond, func(*sim.Kernel) { c.BeginTx(b, img(), 100*sim.Microsecond) })
	k.Run()
	// The base station hears both frames, both collided.
	if len(bs.got) != 2 {
		t.Fatalf("bs received %d frames, want 2", len(bs.got))
	}
	for i, cause := range bs.got {
		if cause != Collided {
			t.Fatalf("frame %d cause = %v, want collided", i, cause)
		}
		// Corrupted images must fail the receiver's CRC.
		if _, ok, _ := packet.Decode(bs.images[i]); ok {
			t.Fatalf("collided frame %d passed CRC", i)
		}
	}
	if got := c.Stats().Collisions; got != 2 {
		t.Fatalf("collisions = %d, want 2", got)
	}
}

func TestBackToBackFramesDoNotCollide(t *testing.T) {
	k, c, a, b, bs := setup()
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	// Second frame starts exactly when the first ends.
	k.Schedule(100*sim.Microsecond, func(*sim.Kernel) { c.BeginTx(b, img(), 100*sim.Microsecond) })
	k.Run()
	for i, cause := range bs.got {
		if cause != Clean {
			t.Fatalf("frame %d cause = %v, want clean", i, cause)
		}
	}
	if got := c.Stats().Collisions; got != 0 {
		t.Fatalf("collisions = %d, want 0", got)
	}
}

func TestLateListenerMissesFrame(t *testing.T) {
	k, c, a, b, _ := setup()
	b.listening = false
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Schedule(30*sim.Microsecond, func(k *sim.Kernel) {
		b.listening = true
		b.since = k.Now() // tuned in mid-frame
	})
	k.Run()
	if len(b.got) != 0 {
		t.Fatalf("mid-frame listener captured the frame")
	}
	if got := c.Stats().MissedStart; got != 1 {
		t.Fatalf("MissedStart = %d, want 1", got)
	}
}

func TestNotListeningGetsNothing(t *testing.T) {
	k, c, a, b, bs := setup()
	b.listening = false
	bs.listening = false
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Run()
	if len(b.got)+len(bs.got) != 0 {
		t.Fatalf("non-listening radios received frames")
	}
}

func TestDisconnectedLink(t *testing.T) {
	k, c, a, b, bs := setup()
	c.SetLink("a", "b", Link{Connected: false})
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Run()
	if len(b.got) != 0 {
		t.Fatalf("disconnected link delivered")
	}
	if len(bs.got) != 1 {
		t.Fatalf("unrelated link affected")
	}
}

func TestBERCorruptsProbabilistically(t *testing.T) {
	k, c, a, _, bs := setup()
	c.SetLink("a", "bs", Link{Connected: true, BER: 0.01}) // ~54% frame loss at 76 bits
	n := 500
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Millisecond
		k.ScheduleAt(at, func(*sim.Kernel) { c.BeginTx(a, img(), 76*sim.Microsecond) })
	}
	k.Run()
	var bad int
	for _, cause := range bs.got {
		if cause == BitError {
			bad++
		}
	}
	if bad < n/4 || bad > 3*n/4 {
		t.Fatalf("bit-error rate implausible: %d/%d corrupted", bad, n)
	}
	// Every corrupted copy fails CRC.
	for i, cause := range bs.got {
		_, ok, _ := packet.Decode(bs.images[i])
		if cause == BitError && ok {
			t.Fatalf("bit-error copy %d passed CRC", i)
		}
		if cause == Clean && !ok {
			t.Fatalf("clean copy %d failed CRC", i)
		}
	}
}

func TestZeroBERNeverCorrupts(t *testing.T) {
	k, c, a, _, bs := setup()
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * sim.Millisecond
		k.ScheduleAt(at, func(*sim.Kernel) { c.BeginTx(a, img(), 76*sim.Microsecond) })
	}
	k.Run()
	for _, cause := range bs.got {
		if cause != Clean {
			t.Fatalf("corruption on a perfect link: %v", cause)
		}
	}
}

func TestBurstModelMeanBER(t *testing.T) {
	b := BurstModel{PGoodToBad: 0.01, PBadToGood: 0.09, BERGood: 0, BERBad: 1e-3}
	// Stationary bad fraction = 0.01/0.10 = 10% -> mean BER 1e-4.
	if got := b.MeanBER(); got < 0.99e-4 || got > 1.01e-4 {
		t.Fatalf("MeanBER = %v, want 1e-4", got)
	}
	flat := BurstModel{BERGood: 5e-5}
	if flat.MeanBER() != 5e-5 {
		t.Fatalf("degenerate model mean = %v", flat.MeanBER())
	}
}

// TestBurstyErrorsCluster: at equal average BER, the Gilbert-Elliott
// link produces longer runs of consecutive corrupted frames than the
// uniform link — the property that makes bursty channels interact
// differently with retry logic.
func TestBurstyErrorsCluster(t *testing.T) {
	run := func(uniform bool) (corrupt int, maxRun int) {
		k := sim.NewKernel(77)
		c := New(k)
		tx := &fakeRadio{id: "tx"}
		rx := &fakeRadio{id: "rx", listening: true}
		c.Attach(tx)
		c.Attach(rx)
		burst := &BurstModel{PGoodToBad: 0.02, PBadToGood: 0.18, BERGood: 0, BERBad: 9e-3}
		if uniform {
			c.SetLink("tx", "rx", Link{Connected: true, BER: burst.MeanBER()})
		} else {
			c.SetLink("tx", "rx", Link{Connected: true, Burst: burst})
		}
		const n = 4000
		for i := 0; i < n; i++ {
			at := sim.Time(i) * sim.Millisecond
			k.ScheduleAt(at, func(*sim.Kernel) { c.BeginTx(tx, img(), 76*sim.Microsecond) })
		}
		k.Run()
		runLen := 0
		for _, cause := range rx.got {
			if cause == BitError {
				corrupt++
				runLen++
				if runLen > maxRun {
					maxRun = runLen
				}
			} else {
				runLen = 0
			}
		}
		return corrupt, maxRun
	}
	uniCorrupt, uniRun := run(true)
	burstCorrupt, burstRun := run(false)
	if uniCorrupt == 0 || burstCorrupt == 0 {
		t.Fatalf("no corruption observed: uniform=%d bursty=%d", uniCorrupt, burstCorrupt)
	}
	// Comparable averages (within 3x), but much longer bursts.
	ratio := float64(burstCorrupt) / float64(uniCorrupt)
	if ratio < 0.33 || ratio > 3 {
		t.Fatalf("average rates diverged: uniform=%d bursty=%d", uniCorrupt, burstCorrupt)
	}
	if burstRun <= uniRun {
		t.Fatalf("bursty max error run %d not above uniform %d", burstRun, uniRun)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k)
	c.Attach(&fakeRadio{id: "x"})
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate attach did not panic")
		}
	}()
	c.Attach(&fakeRadio{id: "x"})
}

func TestNonPositiveAirtimePanics(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k)
	r := &fakeRadio{id: "x"}
	c.Attach(r)
	defer func() {
		if recover() == nil {
			t.Fatalf("zero airtime did not panic")
		}
	}()
	c.BeginTx(r, []byte{1}, 0)
}

func TestBusy(t *testing.T) {
	k, c, a, _, _ := setup()
	k.Schedule(0, func(*sim.Kernel) {
		c.BeginTx(a, img(), 100*sim.Microsecond)
		if !c.Busy() {
			t.Errorf("channel not busy during transmission")
		}
	})
	k.Run()
	if c.Busy() {
		t.Errorf("channel busy after all frames ended")
	}
}

func TestThreeWayCollision(t *testing.T) {
	k, c, a, b, bs := setup()
	d := &fakeRadio{id: "d", listening: true}
	c.Attach(d)
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Schedule(10*sim.Microsecond, func(*sim.Kernel) { c.BeginTx(b, img(), 100*sim.Microsecond) })
	k.Schedule(20*sim.Microsecond, func(*sim.Kernel) { c.BeginTx(bs, img(), 100*sim.Microsecond) })
	k.Run()
	// d hears all three, all corrupted.
	if len(d.got) != 3 {
		t.Fatalf("d received %d, want 3", len(d.got))
	}
	for _, cause := range d.got {
		if cause != Collided {
			t.Fatalf("cause = %v, want collided", cause)
		}
	}
	if got := c.Stats().Collisions; got != 3 {
		t.Fatalf("collisions = %d, want 3", got)
	}
}

// Property: frames never vanish — every transmission is delivered to
// every connected listener that was tuned in before it started, exactly
// once, corrupted or not.
func TestQuickConservation(t *testing.T) {
	f := func(starts []uint16) bool {
		k := sim.NewKernel(11)
		c := New(k)
		tx := &fakeRadio{id: "tx"}
		rx := &fakeRadio{id: "rx", listening: true}
		c.Attach(tx)
		c.Attach(rx)
		if len(starts) > 40 {
			starts = starts[:40]
		}
		for _, s := range starts {
			at := sim.Time(s) * sim.Microsecond
			k.ScheduleAt(at, func(*sim.Kernel) {
				c.BeginTx(tx, img(), 50*sim.Microsecond)
			})
		}
		k.Run()
		return len(rx.got) == len(starts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: overlap relation is symmetric — if any two transmissions
// from distinct senders overlap, both arrive corrupted at a third
// listener.
func TestQuickCollisionSymmetry(t *testing.T) {
	f := func(gap uint8) bool {
		k := sim.NewKernel(13)
		c := New(k)
		a := &fakeRadio{id: "a"}
		b := &fakeRadio{id: "b"}
		w := &fakeRadio{id: "w", listening: true}
		c.Attach(a)
		c.Attach(b)
		c.Attach(w)
		air := 100 * sim.Microsecond
		g := sim.Time(gap) * 2 * sim.Microsecond
		k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), air) })
		k.ScheduleAt(g, func(*sim.Kernel) { c.BeginTx(b, img(), air) })
		k.Run()
		if len(w.got) != 2 {
			return false
		}
		overlap := g < air
		if overlap {
			return w.got[0] == Collided && w.got[1] == Collided
		}
		return w.got[0] == Clean && w.got[1] == Clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlackoutSuppressesDelivery(t *testing.T) {
	k, c, a, b, bs := setup()
	c.SetBlackout("a", "bs", true)
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Run()
	if len(bs.got) != 0 {
		t.Fatalf("bs received %v through a blackout", bs.got)
	}
	// The blackout is directional: the other listener still hears it.
	if len(b.got) != 1 || b.got[0] != Clean {
		t.Fatalf("b got %v, want one clean copy", b.got)
	}
	if st := c.Stats(); st.BlackoutDrops != 1 {
		t.Fatalf("BlackoutDrops = %d, want 1", st.BlackoutDrops)
	}
}

func TestBlackoutDepthComposes(t *testing.T) {
	k, c, a, _, bs := setup()
	// Two overlapping windows: the path stays dark until both close.
	c.SetBlackout("a", "bs", true)
	c.SetBlackout("a", "bs", true)
	c.SetBlackout("a", "bs", false)
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Run()
	if len(bs.got) != 0 {
		t.Fatalf("path delivered with one of two windows still open")
	}
	c.SetBlackout("a", "bs", false)
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Run()
	if len(bs.got) != 1 || bs.got[0] != Clean {
		t.Fatalf("bs got %v after both windows closed, want one clean copy", bs.got)
	}
	// Closing more windows than were opened must not wedge the path.
	c.SetBlackout("a", "bs", false)
	c.SetBlackout("a", "bs", true)
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Run()
	if len(bs.got) != 1 {
		t.Fatalf("over-closing cancelled a later window")
	}
}

func TestJammingCorruptsNewAndInFlightFrames(t *testing.T) {
	k, c, a, b, bs := setup()
	// Frame in flight when the burst starts.
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Schedule(50*sim.Microsecond, func(*sim.Kernel) { c.SetJamming(true) })
	// Frame born inside the burst.
	k.Schedule(120*sim.Microsecond, func(*sim.Kernel) { c.BeginTx(b, img(), 100*sim.Microsecond) })
	k.Schedule(300*sim.Microsecond, func(*sim.Kernel) { c.SetJamming(false) })
	// Frame after the burst ends: clean again.
	k.Schedule(400*sim.Microsecond, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Run()
	want := []Corruption{Jammed, Jammed, Clean}
	if len(bs.got) != 3 {
		t.Fatalf("bs got %d copies, want 3", len(bs.got))
	}
	for i, cause := range want {
		if bs.got[i] != cause {
			t.Fatalf("copy %d delivered as %v, want %v", i, bs.got[i], cause)
		}
	}
	// Jammed copies must fail the receiver-side CRC.
	if _, ok, _ := packet.Decode(bs.images[0]); ok {
		t.Fatalf("jammed copy passed CRC")
	}
	if st := c.Stats(); st.JammedFrames != 2 {
		t.Fatalf("JammedFrames = %d, want 2", st.JammedFrames)
	}
}

func TestAbortTxTruncatesInFlight(t *testing.T) {
	k, c, a, b, bs := setup()
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	// The transmitter dies mid-burst; listeners were committed to the
	// airtime, so a corrupted copy still arrives on schedule.
	k.Schedule(40*sim.Microsecond, func(*sim.Kernel) { c.AbortTx(a) })
	k.Run()
	for _, r := range []*fakeRadio{b, bs} {
		if len(r.got) != 1 || r.got[0] != Truncated {
			t.Fatalf("radio %s got %v, want one truncated copy", r.id, r.got)
		}
	}
	if _, ok, _ := packet.Decode(bs.images[0]); ok {
		t.Fatalf("truncated copy passed CRC")
	}
	if st := c.Stats(); st.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", st.Truncated)
	}
}

func TestAbortTxLeavesOtherSendersAlone(t *testing.T) {
	k, c, a, b, bs := setup()
	// Non-overlapping frames from two senders; aborting a's must not
	// touch b's.
	k.Schedule(0, func(*sim.Kernel) { c.BeginTx(a, img(), 100*sim.Microsecond) })
	k.Schedule(10*sim.Microsecond, func(*sim.Kernel) { c.AbortTx(a) })
	k.Schedule(200*sim.Microsecond, func(*sim.Kernel) { c.BeginTx(b, img(), 100*sim.Microsecond) })
	k.Schedule(210*sim.Microsecond, func(*sim.Kernel) { c.AbortTx(a) }) // nothing of a's in flight
	k.Run()
	if len(bs.got) != 2 || bs.got[0] != Truncated || bs.got[1] != Clean {
		t.Fatalf("bs got %v, want [truncated clean]", bs.got)
	}
}
