// Package channel models the shared 2.4 GHz broadcast medium of the BAN
// at the physical level the paper's framework cares about: concurrent
// transmissions collide and corrupt each other (TOSSIM's logical-or
// shortcut is replaced by real corruption so the receiver's CRC fails,
// §4.2), every listening radio in range receives every frame (enabling
// overhearing accounting), and links can carry a configurable bit error
// rate.
//
// Body Area Networks are a single interference domain — a few metres of
// body surface — so the default topology is fully connected, with
// per-link overrides for reachability and error-rate experiments.
package channel

import (
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/sim"
)

// Corruption says why a delivered frame is broken, so receivers can
// attribute the wasted reception energy to the right loss category.
type Corruption int

const (
	// Clean marks an intact frame.
	Clean Corruption = iota
	// Collided marks a frame corrupted by a concurrent transmission.
	Collided
	// BitError marks a frame corrupted by channel noise.
	BitError
	// Jammed marks a frame corrupted by external interference (a
	// non-network emitter saturating the band during a fault window).
	Jammed
	// Truncated marks a frame whose transmitter died mid-burst; the
	// partial frame on the air cannot pass any receiver's CRC.
	Truncated
)

// String names the corruption cause.
func (c Corruption) String() string {
	switch c {
	case Clean:
		return "clean"
	case Collided:
		return "collided"
	case BitError:
		return "bit-error"
	case Jammed:
		return "jammed"
	case Truncated:
		return "truncated"
	default:
		return fmt.Sprintf("corruption(%d)", int(c))
	}
}

// Transceiver is the channel's view of a radio.
type Transceiver interface {
	// ChannelID uniquely names the radio on the medium.
	ChannelID() string
	// ListeningSince reports the instant the radio last entered a
	// receive-capable state, and false when it cannot currently capture
	// a frame. A radio must have been listening since before the frame's
	// first preamble bit to capture it.
	ListeningSince() (sim.Time, bool)
	// Deliver hands the radio a frame image at end-of-frame. image is
	// the on-air serialisation (address+payload+CRC); cause reports
	// in-flight corruption. The image of a corrupted frame has bits
	// flipped, so the receiver's own CRC check fails naturally.
	Deliver(image []byte, cause Corruption)
}

// Link describes one directed path between two radios.
type Link struct {
	// Connected reports whether to can hear from at all.
	Connected bool
	// BER is the per-bit error probability applied to frames on this
	// path.
	BER float64
	// Burst, when non-nil, replaces the uniform BER with a two-state
	// Gilbert-Elliott error process.
	Burst *BurstModel
}

// BurstModel is a Gilbert-Elliott channel: the link alternates between a
// good and a bad state with per-frame transition probabilities, and each
// state has its own bit error rate. On-body links are bursty — posture
// changes and gait shadow the path for runs of frames rather than
// flipping independent bits — and burstiness interacts with the MAC's
// retry logic very differently from a uniform BER of the same average.
type BurstModel struct {
	// PGoodToBad and PBadToGood are the per-frame transition
	// probabilities.
	PGoodToBad float64
	PBadToGood float64
	// BERGood and BERBad are the per-bit error rates in each state.
	BERGood float64
	BERBad  float64
}

// MeanBER reports the long-run average bit error rate of the process.
func (b BurstModel) MeanBER() float64 {
	if approx.Unset(b.PGoodToBad) && approx.Unset(b.PBadToGood) {
		return b.BERGood
	}
	pBad := b.PGoodToBad / (b.PGoodToBad + b.PBadToGood)
	return (1-pBad)*b.BERGood + pBad*b.BERBad
}

// Stats counts medium-level events.
type Stats struct {
	Transmissions uint64 // frames put on the air
	Collisions    uint64 // frames corrupted by overlap
	Deliveries    uint64 // frame copies handed to listening radios
	CorruptCopies uint64 // delivered copies that were corrupted
	MissedStart   uint64 // copies lost because the radio tuned in mid-frame
	JammedFrames  uint64 // frames corrupted by an interference burst
	Truncated     uint64 // frames whose transmitter died mid-burst
	BlackoutDrops uint64 // copies suppressed by a link blackout window
}

type transmission struct {
	from  Transceiver
	image []byte
	start sim.Time
	end   sim.Time
	cause Corruption // Clean until an overlap corrupts it
}

// Channel is the shared medium. All methods must run on the simulation
// goroutine.
type Channel struct {
	k     *sim.Kernel
	nodes []Transceiver
	byID  map[string]Transceiver
	links map[[2]string]Link
	// burstBad tracks the Gilbert-Elliott state of each bursty link.
	burstBad map[[2]string]bool
	// blackouts counts active blackout windows per directed path; a
	// positive depth suppresses delivery entirely (the path is shadowed).
	// Depth counting lets overlapping fault windows compose.
	blackouts map[[2]string]int
	// jamDepth counts active interference bursts; while positive, every
	// frame on the air is corrupted.
	jamDepth int
	active   []*transmission
	stats    Stats
	// txPool recycles transmission records (and their image buffers)
	// once finishTx has delivered them, so steady-state traffic stops
	// allocating per frame. corruptBuf is the scratch a corrupted copy
	// is built in; receivers copy the image out synchronously inside
	// Deliver, so one buffer serves every delivery.
	txPool     []*transmission
	corruptBuf []byte
}

// New creates an empty medium on the kernel.
func New(k *sim.Kernel) *Channel {
	return &Channel{
		k:         k,
		byID:      make(map[string]Transceiver),
		links:     make(map[[2]string]Link),
		burstBad:  make(map[[2]string]bool),
		blackouts: make(map[[2]string]int),
	}
}

// Attach adds a radio to the medium. IDs must be unique.
func (c *Channel) Attach(t Transceiver) {
	id := t.ChannelID()
	if _, dup := c.byID[id]; dup {
		panic(fmt.Sprintf("channel: duplicate transceiver %q", id))
	}
	c.byID[id] = t
	c.nodes = append(c.nodes, t)
}

// SetLink overrides the path from -> to. Paths default to
// {Connected: true, BER: 0} (a fully connected, error-free BAN).
func (c *Channel) SetLink(from, to string, l Link) {
	c.links[[2]string{from, to}] = l
}

// link reports the effective path parameters.
func (c *Channel) link(from, to string) Link {
	if l, ok := c.links[[2]string{from, to}]; ok {
		return l
	}
	return Link{Connected: true}
}

// SetBlackout opens (active) or closes an additional blackout window on
// the directed path from -> to. While any window is open the path
// delivers nothing — not even corrupted copies — regardless of the
// SetLink parameters, so blackouts compose with BER/burst models instead
// of overwriting them. Closing more windows than were opened is a no-op.
func (c *Channel) SetBlackout(from, to string, active bool) {
	key := [2]string{from, to}
	if active {
		c.blackouts[key]++
		return
	}
	if c.blackouts[key] > 0 {
		c.blackouts[key]--
		if c.blackouts[key] == 0 {
			delete(c.blackouts, key)
		}
	}
}

// SetJamming opens (active) or closes an external interference burst.
// While any burst is open every frame put on the air is corrupted, and
// frames already in flight when the burst starts are corrupted too.
func (c *Channel) SetJamming(active bool) {
	if !active {
		if c.jamDepth > 0 {
			c.jamDepth--
		}
		return
	}
	c.jamDepth++
	now := c.k.Now()
	for _, tx := range c.active {
		if tx.end > now && tx.cause == Clean {
			tx.cause = Jammed
			c.stats.JammedFrames++
		}
	}
}

// AbortTx marks every in-flight frame from the given radio as truncated:
// the transmitter died mid-burst, so the partial frame fails every
// receiver's CRC. Delivery timing is unchanged (listeners were committed
// to the frame's airtime either way).
func (c *Channel) AbortTx(from Transceiver) {
	now := c.k.Now()
	for _, tx := range c.active {
		if tx.from == from && tx.end > now && tx.cause == Clean {
			tx.cause = Truncated
			c.stats.Truncated++
		}
	}
}

// Stats returns a copy of the medium counters.
func (c *Channel) Stats() Stats { return c.stats }

// BeginTx puts a frame on the air from the given radio for the given
// airtime. Any temporal overlap with another in-flight frame corrupts
// both (single interference domain). Delivery to each listening radio
// happens at end-of-frame.
func (c *Channel) BeginTx(from Transceiver, image []byte, airtime sim.Time) {
	if airtime <= 0 {
		panic("channel: non-positive airtime")
	}
	now := c.k.Now()
	var tx *transmission
	if n := len(c.txPool); n > 0 {
		tx = c.txPool[n-1]
		c.txPool = c.txPool[:n-1]
	} else {
		//lint:allow hotalloc pool-miss growth only; steady state recycles transmissions through txPool
		tx = &transmission{}
	}
	tx.from = from
	tx.image = append(tx.image[:0], image...)
	tx.start = now
	tx.end = now + airtime
	tx.cause = Clean
	// External interference corrupts the frame outright.
	if c.jamDepth > 0 {
		tx.cause = Jammed
		c.stats.JammedFrames++
	}
	// Collision detection against every frame still on the air. Frames
	// already corrupted by another mechanism keep their original cause.
	for _, other := range c.active {
		if other.end > now { // overlap in time
			if other.cause == Clean {
				other.cause = Collided
				c.stats.Collisions++
			}
			if tx.cause == Clean {
				tx.cause = Collided
				c.stats.Collisions++
			}
		}
	}
	c.active = append(c.active, tx)
	c.stats.Transmissions++

	//lint:allow hotalloc the end-of-frame closure is the kernel handler ABI: one bounded allocation per transmission
	c.k.ScheduleAt(tx.end, func(*sim.Kernel) { c.finishTx(tx) })
}

func (c *Channel) finishTx(tx *transmission) {
	// Drop tx from the active list.
	for i, a := range c.active {
		if a == tx {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	fromID := tx.from.ChannelID()
	for _, rx := range c.nodes {
		if rx == tx.from {
			continue
		}
		l := c.link(fromID, rx.ChannelID())
		if !l.Connected {
			continue
		}
		if c.blackouts[[2]string{fromID, rx.ChannelID()}] > 0 {
			c.stats.BlackoutDrops++
			continue
		}
		since, listening := rx.ListeningSince()
		if !listening {
			continue
		}
		if since > tx.start {
			// Tuned in after the preamble: the frame is unreceivable,
			// but the radio burned RX current regardless (that time is
			// already metered; it will surface as idle listening).
			c.stats.MissedStart++
			continue
		}
		cause := tx.cause
		image := tx.image
		ber := l.BER
		if l.Burst != nil {
			key := [2]string{fromID, rx.ChannelID()}
			bad := c.burstBad[key]
			// Evolve the Gilbert-Elliott state once per frame.
			if bad {
				if c.k.Rand().Float64() < l.Burst.PBadToGood {
					bad = false
				}
			} else if c.k.Rand().Float64() < l.Burst.PGoodToBad {
				bad = true
			}
			c.burstBad[key] = bad
			if bad {
				ber = l.Burst.BERBad
			} else {
				ber = l.Burst.BERGood
			}
		}
		if cause == Clean && ber > 0 {
			bits := len(image) * 8
			pClean := math.Pow(1-ber, float64(bits))
			if c.k.Rand().Float64() > pClean {
				cause = BitError
			}
		}
		if cause != Clean {
			image = c.corruptCopy(image)
			c.stats.CorruptCopies++
		}
		c.stats.Deliveries++
		rx.Deliver(image, cause)
	}
	tx.from = nil
	c.txPool = append(c.txPool, tx)
}

// corruptCopy flips one to three bits of a copy of image so that the
// receiver's CRC check fails the way real corrupted frames do. The copy
// lives in the channel's scratch buffer and is only valid until the
// next corruptCopy call; receivers take their own copy inside Deliver.
func (c *Channel) corruptCopy(image []byte) []byte {
	c.corruptBuf = append(c.corruptBuf[:0], image...)
	out := c.corruptBuf
	flips := 1 + c.k.Rand().Intn(3)
	var flipped [3]int
	for i := 0; i < flips; i++ {
		bit := c.k.Rand().Intn(len(out) * 8)
		for contains(flipped[:i], bit) { // distinct bits: re-flipping would undo the damage
			bit = c.k.Rand().Intn(len(out) * 8)
		}
		flipped[i] = bit
		out[bit/8] ^= 1 << uint(bit%8)
	}
	return out
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Busy reports whether any frame is currently on the air.
func (c *Channel) Busy() bool {
	now := c.k.Now()
	for _, a := range c.active {
		if a.end > now {
			return true
		}
	}
	return false
}
