package report

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/sim"
)

func TestRenderAudit(t *testing.T) {
	if got := RenderAudit(nil); got != "" {
		t.Fatalf("nil summary rendered %q", got)
	}
	clean := &audit.Summary{Checks: 42}
	if got := RenderAudit(clean); !strings.Contains(got, "42 checks") ||
		!strings.Contains(got, "all laws held") {
		t.Fatalf("clean summary rendered %q", got)
	}
	broken := &audit.Summary{
		Checks: 10,
		Violations: []audit.Violation{{
			At: 250 * sim.Millisecond, Invariant: "frame-conservation",
			Subject: "node2", Detail: "AckMissed 3 != Retries 1 + DataDropped 1",
		}},
		Dropped: 5,
	}
	got := RenderAudit(broken)
	for _, want := range []string{"1 violation(s)", "+5 beyond", "frame-conservation[node2]", "t=250ms"} {
		if !strings.Contains(got, want) {
			t.Fatalf("rendered summary missing %q:\n%s", want, got)
		}
	}
}
