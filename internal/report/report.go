// Package report renders reproduction results next to the paper's
// published values, in the format of the paper's tables, and computes the
// per-row and average estimation errors used as acceptance criteria.
package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/approx"
)

// Comparison is one sweep point's reproduction outcome next to the
// published values.
type Comparison struct {
	Label   string
	CycleMS float64
	// Paper columns.
	RadioRealMJ, RadioSimMJ float64
	MCURealMJ, MCUSimMJ     float64
	// Our columns.
	OursRadioMJ, OursMCUMJ float64
	// Analytic model columns (independent closed-form estimate).
	AnalyticRadioMJ, AnalyticMCUMJ float64
	// Omitted is empty for a complete row. When the simulation behind
	// the row failed or was skipped (interrupted batch), it holds the
	// reason; the Ours columns are then meaningless and the row is
	// excluded from every average.
	Omitted string
}

// RadioErrVsReal reports our radio estimate's percent error against the
// paper's measurement.
func (c Comparison) RadioErrVsReal() float64 { return pctErr(c.OursRadioMJ, c.RadioRealMJ) }

// RadioErrVsSim reports our radio estimate's percent error against the
// paper's simulator.
func (c Comparison) RadioErrVsSim() float64 { return pctErr(c.OursRadioMJ, c.RadioSimMJ) }

// MCUErrVsReal reports our µC estimate's percent error against the
// paper's measurement.
func (c Comparison) MCUErrVsReal() float64 { return pctErr(c.OursMCUMJ, c.MCURealMJ) }

// MCUErrVsSim reports our µC estimate's percent error against the
// paper's simulator.
func (c Comparison) MCUErrVsSim() float64 { return pctErr(c.OursMCUMJ, c.MCUSimMJ) }

func pctErr(got, want float64) float64 {
	if approx.Unset(want) {
		return math.Inf(1)
	}
	return (got - want) / want * 100
}

// TableReport is a full reproduced table.
type TableReport struct {
	ID      string
	Caption string
	Rows    []Comparison
}

// AvgAbsRadioErrVsReal reports the mean absolute radio error against the
// measurements — the figure of merit the paper quotes per table.
func (t TableReport) AvgAbsRadioErrVsReal() float64 {
	return mean(t.Rows, func(c Comparison) float64 { return math.Abs(c.RadioErrVsReal()) })
}

// AvgAbsMCUErrVsReal reports the mean absolute µC error against the
// measurements.
func (t TableReport) AvgAbsMCUErrVsReal() float64 {
	return mean(t.Rows, func(c Comparison) float64 { return math.Abs(c.MCUErrVsReal()) })
}

// AvgAbsRadioErrVsSim reports the mean absolute radio error against the
// paper's simulator.
func (t TableReport) AvgAbsRadioErrVsSim() float64 {
	return mean(t.Rows, func(c Comparison) float64 { return math.Abs(c.RadioErrVsSim()) })
}

// AvgAbsMCUErrVsSim reports the mean absolute µC error against the
// paper's simulator.
func (t TableReport) AvgAbsMCUErrVsSim() float64 {
	return mean(t.Rows, func(c Comparison) float64 { return math.Abs(c.MCUErrVsSim()) })
}

func mean(rows []Comparison, f func(Comparison) float64) float64 {
	var s float64
	n := 0
	for _, r := range rows {
		if r.Omitted != "" {
			continue
		}
		s += f(r)
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// OmittedRows counts rows without simulator columns — failed or skipped
// points salvaged from a partial batch.
func (t TableReport) OmittedRows() int {
	n := 0
	for _, r := range t.Rows {
		if r.Omitted != "" {
			n++
		}
	}
	return n
}

// Partial reports whether the table is missing any simulator rows.
func (t TableReport) Partial() bool { return t.OmittedRows() > 0 }

// Render formats the table in the paper's layout, extended with our
// simulator's and the analytic model's columns and per-row errors.
func (t TableReport) Render() string {
	var b strings.Builder
	partial := ""
	if t.Partial() {
		partial = fmt.Sprintf(" [PARTIAL: %d/%d rows omitted]", t.OmittedRows(), len(t.Rows))
	}
	fmt.Fprintf(&b, "%s — %s%s\n", strings.ToUpper(t.ID), t.Caption, partial)
	fmt.Fprintf(&b, "%-9s %-7s | %-26s | %-26s\n", "", "",
		"E Radio (mJ)", "E uC (mJ)")
	fmt.Fprintf(&b, "%-9s %-7s | %7s %7s %7s %7s | %7s %7s %7s %7s | %8s %8s\n",
		"point", "cycle",
		"real", "sim", "ours", "analyt",
		"real", "sim", "ours", "analyt",
		"dRadio%", "dMCU%")
	b.WriteString(strings.Repeat("-", 126))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		if r.Omitted != "" {
			fmt.Fprintf(&b, "%-9s %5.0fms | (no result: %s)\n", r.Label, r.CycleMS, r.Omitted)
			continue
		}
		fmt.Fprintf(&b, "%-9s %5.0fms | %7.1f %7.1f %7.1f %7.1f | %7.1f %7.1f %7.1f %7.1f | %+8.1f %+8.1f\n",
			r.Label, r.CycleMS,
			r.RadioRealMJ, r.RadioSimMJ, r.OursRadioMJ, r.AnalyticRadioMJ,
			r.MCURealMJ, r.MCUSimMJ, r.OursMCUMJ, r.AnalyticMCUMJ,
			r.RadioErrVsReal(), r.MCUErrVsReal())
	}
	b.WriteString(strings.Repeat("-", 126))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "avg |err| vs real: radio %.1f%%  uC %.1f%%   (vs paper's sim: radio %.1f%%  uC %.1f%%)",
		t.AvgAbsRadioErrVsReal(), t.AvgAbsMCUErrVsReal(),
		t.AvgAbsRadioErrVsSim(), t.AvgAbsMCUErrVsSim())
	if t.Partial() {
		fmt.Fprintf(&b, "   over %d of %d rows", len(t.Rows)-t.OmittedRows(), len(t.Rows))
	}
	b.WriteByte('\n')
	return b.String()
}

// Bar is one Figure 4 style stacked bar.
type Bar struct {
	Label   string
	RadioMJ float64
	MCUMJ   float64
}

// Total reports the bar's stacked height.
func (b Bar) Total() float64 { return b.RadioMJ + b.MCUMJ }

// RenderFigure4 renders the streaming-vs-Rpeak comparison as the paper's
// stacked bars (textually), with the energy-saving headline.
func RenderFigure4(bars []Bar) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 4 — ECG streaming vs on-node Rpeak (radio+uC energy over 60 s)\n")
	max := 0.0
	for _, b := range bars {
		if b.Total() > max {
			max = b.Total()
		}
	}
	const width = 60
	for _, b := range bars {
		radioW := int(b.RadioMJ / max * width)
		mcuW := int(b.MCUMJ / max * width)
		fmt.Fprintf(&sb, "%-22s |%s%s %6.1f mJ (radio %.1f + uC %.1f)\n",
			b.Label,
			strings.Repeat("R", radioW), strings.Repeat("u", mcuW),
			b.Total(), b.RadioMJ, b.MCUMJ)
	}
	if len(bars) >= 2 {
		first, last := bars[0].Total(), bars[len(bars)-1].Total()
		if first > 0 {
			fmt.Fprintf(&sb, "energy saving: %.0f%% (paper: 65%%)\n", (1-last/first)*100)
		}
	}
	return sb.String()
}
