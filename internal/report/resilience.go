package report

import (
	"fmt"
	"strings"

	"repro/internal/fault"
)

// NodeAvailability is one node's resilience summary: the fraction of the
// measurement window it held a slot and its end-to-end delivery ratio.
type NodeAvailability struct {
	Name          string
	Availability  float64
	DeliveryRatio float64
}

// RenderResilience formats the fault-injection outcome of a run: per-node
// availability and delivery, then one line per scheduled fault with its
// recovery figures. It returns "" for a fault-free run with full
// availability, so callers can print it unconditionally.
func RenderResilience(nodes []NodeAvailability, outcomes []fault.Outcome, slotsReclaimed uint64) string {
	faultFree := len(outcomes) == 0 && slotsReclaimed == 0
	if faultFree {
		full := true
		for _, n := range nodes {
			if n.Availability < 1 {
				full = false
				break
			}
		}
		if full {
			return ""
		}
	}
	var b strings.Builder
	b.WriteString("Resilience:\n")
	for _, n := range nodes {
		fmt.Fprintf(&b, "  %-8s availability %6.2f%%  delivery %6.2f%%\n",
			n.Name, n.Availability*100, n.DeliveryRatio*100)
	}
	if slotsReclaimed > 0 {
		fmt.Fprintf(&b, "  slots reclaimed by the base station: %d\n", slotsReclaimed)
	}
	for _, o := range outcomes {
		fmt.Fprintf(&b, "  %v: ", o.Fault)
		switch o.Fault.Kind {
		case fault.KindCrash:
			if o.Fault.RebootAfter == 0 {
				b.WriteString("never rebooted")
			} else if o.Rejoined {
				fmt.Fprintf(&b, "rejoined %v after reboot", o.TimeToRejoin)
			} else {
				fmt.Fprintf(&b, "rebooted at %v, never rejoined", o.RebootedAt)
			}
			fmt.Fprintf(&b, "; delivery during outage %d/%d", o.AckedDuring, o.SentDuring)
		case fault.KindBrownout:
			b.WriteString("battery depleted; node down for the rest of the run")
		default:
			fmt.Fprintf(&b, "delivery during window %d/%d (%.1f%%)",
				o.AckedDuring, o.SentDuring, o.DeliveryDuring()*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}
