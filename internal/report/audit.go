package report

import (
	"fmt"
	"strings"

	"repro/internal/audit"
)

// RenderAudit formats the invariant-audit summary: one line for a clean
// run, or the violation rows when any law broke. It returns "" when
// auditing was not enabled, so callers can print it unconditionally.
func RenderAudit(sum *audit.Summary) string {
	if sum == nil {
		return ""
	}
	var b strings.Builder
	if !sum.Failed() {
		fmt.Fprintf(&b, "Invariant audits: %d checks, all laws held\n", sum.Checks)
		return b.String()
	}
	fmt.Fprintf(&b, "Invariant audits: %d checks, %d violation(s)",
		sum.Checks, len(sum.Violations))
	if sum.Dropped > 0 {
		fmt.Fprintf(&b, " (+%d beyond the recording limit)", sum.Dropped)
	}
	b.WriteString(":\n")
	for _, v := range sum.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}
