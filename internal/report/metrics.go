package report

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// RenderMetrics formats an observability snapshot as the per-phase
// breakdown table: component power-state residency with its energy cost
// (the paper's E = I·Vdd·t decomposition, one row per state instead of
// one aggregate per component), the loss-category split, the typed
// counters and the latency histograms. It returns "" for a nil snapshot
// so callers can print unconditionally.
func RenderMetrics(s *metrics.Snapshot) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Metrics (%d point(s), %d kernel events, %d trace events",
		s.Points, s.KernelEvents, s.EventsRecorded)
	if s.EventsDropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", s.EventsDropped)
	}
	b.WriteString("):\n")

	var states, losses []metrics.StateRow
	for _, r := range s.States {
		if r.Component == "loss" {
			losses = append(losses, r)
		} else {
			states = append(states, r)
		}
	}
	if len(states) > 0 {
		b.WriteString("  state residency:\n")
		b.WriteString("    node     component  state         time_ms   energy_mj\n")
		for _, r := range states {
			fmt.Fprintf(&b, "    %-8s %-10s %-10s %10.1f  %10.4f\n",
				r.Node, r.Component, r.State, r.Time.Milliseconds(), r.EnergyMJ)
		}
	}
	if len(losses) > 0 {
		b.WriteString("  losses:\n")
		for _, r := range losses {
			fmt.Fprintf(&b, "    %-8s %-20s %10.4f mJ\n", r.Node, r.State, r.EnergyMJ)
		}
	}
	if len(s.Counters) > 0 {
		b.WriteString("  counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "    %-8s %-24s %10d\n", c.Node, c.Name, c.Value)
		}
	}
	if len(s.Hists) > 0 {
		b.WriteString("  latency (ms):\n")
		b.WriteString("    node     metric         count        avg        p50        p90        p99        max\n")
		for _, h := range s.Hists {
			avg := sim.Time(0)
			if h.Count > 0 {
				avg = h.Sum / sim.Time(h.Count)
			}
			fmt.Fprintf(&b, "    %-8s %-12s %7d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				h.Node, h.Name, h.Count,
				avg.Milliseconds(), h.P50.Milliseconds(), h.P90.Milliseconds(),
				h.P99.Milliseconds(), h.Max.Milliseconds())
		}
	}
	return b.String()
}
