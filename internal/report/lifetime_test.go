package report

import (
	"strings"
	"testing"

	"repro/internal/battery"
	"repro/internal/sim"
)

// sampleLifetime is a canned battery outcome exercising every
// RenderLifetime branch: a healthy node, a degraded survivor, a dead
// node with its brownout instant, and a battery-less node that must be
// skipped.
func sampleLifetime() ([]NodeBattery, sim.Time, sim.Time) {
	nodes := []NodeBattery{
		{Name: "node1", Report: &battery.Report{
			SOC: 0.724, VoltageV: 2.93, Level: battery.LevelNormal, LevelName: "normal",
		}},
		{Name: "node2", Report: &battery.Report{
			SOC: 0.061, VoltageV: 2.41, Level: battery.LevelBeaconOnly, LevelName: "beacon-only",
		}},
		{Name: "node3", Report: &battery.Report{
			SOC: 0, VoltageV: 2.0, Level: battery.LevelDead, LevelName: "dead",
			Died: true, DiedAt: 20555 * sim.Millisecond,
		}},
		{Name: "node4"},
	}
	return nodes, 20555 * sim.Millisecond, 21 * sim.Second
}

func TestGoldenRenderLifetime(t *testing.T) {
	nodes, first, lifetime := sampleLifetime()
	checkGolden(t, "lifetime.txt.golden", RenderLifetime(nodes, first, lifetime))
}

func TestRenderLifetimeQuietWithoutBatteries(t *testing.T) {
	nodes := []NodeBattery{{Name: "node1"}, {Name: "node2"}}
	if out := RenderLifetime(nodes, 0, 0); out != "" {
		t.Fatalf("battery-less run rendered %q, want silence", out)
	}
	if out := RenderLifetime(nil, 0, 0); out != "" {
		t.Fatalf("empty run rendered %q, want silence", out)
	}
}

// TestRenderLifetimeOmitsZeroFigures: a run every node survived prints
// no death or lifetime lines, only the per-node state.
func TestRenderLifetimeOmitsZeroFigures(t *testing.T) {
	nodes := []NodeBattery{{Name: "node1", Report: &battery.Report{
		SOC: 0.5, VoltageV: 2.8, LevelName: "normal",
	}}}
	out := RenderLifetime(nodes, 0, 0)
	if out == "" {
		t.Fatal("battery run rendered nothing")
	}
	for _, banned := range []string{"first death", "network lifetime"} {
		if strings.Contains(out, banned) {
			t.Fatalf("survivor-only render mentions %q:\n%s", banned, out)
		}
	}
}
