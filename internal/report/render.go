package report

import (
	"fmt"
	"strings"
)

// RenderMarkdown formats the table as GitHub-flavoured markdown, the
// format EXPERIMENTS.md uses, so the document can be regenerated from a
// run verbatim.
func (t TableReport) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", strings.ToUpper(t.ID[:1])+t.ID[1:], t.Caption)
	b.WriteString("| point | cycle | radio real | radio sim | radio ours | radio analyt | µC real | µC sim | µC ours | µC analyt | dRadio% | dMCU% |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range t.Rows {
		if r.Omitted != "" {
			fmt.Fprintf(&b, "| %s | %.0f ms | — | — | — | — | — | — | — | — | — | — |\n",
				r.Label, r.CycleMS)
			continue
		}
		fmt.Fprintf(&b, "| %s | %.0f ms | %.1f | %.1f | %.1f | %.1f | %.1f | %.1f | %.1f | %.1f | %+.1f | %+.1f |\n",
			r.Label, r.CycleMS,
			r.RadioRealMJ, r.RadioSimMJ, r.OursRadioMJ, r.AnalyticRadioMJ,
			r.MCURealMJ, r.MCUSimMJ, r.OursMCUMJ, r.AnalyticMCUMJ,
			r.RadioErrVsReal(), r.MCUErrVsReal())
	}
	fmt.Fprintf(&b, "\nAverage \\|error\\| vs real: **radio %.1f%%, µC %.1f%%** (vs the paper's simulator: radio %.1f%%, µC %.1f%%).\n",
		t.AvgAbsRadioErrVsReal(), t.AvgAbsMCUErrVsReal(),
		t.AvgAbsRadioErrVsSim(), t.AvgAbsMCUErrVsSim())
	if t.Partial() {
		fmt.Fprintf(&b, "\n_Partial table: %d of %d rows omitted", t.OmittedRows(), len(t.Rows))
		for _, r := range t.Rows {
			if r.Omitted != "" {
				fmt.Fprintf(&b, "; %s (%s)", r.Label, r.Omitted)
			}
		}
		b.WriteString("._\n")
	}
	return b.String()
}

// RenderCSV formats the table as CSV with a header row, for plotting.
func (t TableReport) RenderCSV() string {
	var b strings.Builder
	b.WriteString("point,cycle_ms,radio_real_mj,radio_sim_mj,radio_ours_mj,radio_analyt_mj," +
		"mcu_real_mj,mcu_sim_mj,mcu_ours_mj,mcu_analyt_mj,radio_err_pct,mcu_err_pct\n")
	for _, r := range t.Rows {
		if r.Omitted != "" {
			// Plotting tools read the empty fields as missing values.
			fmt.Fprintf(&b, "%s,%.1f,%.1f,%.1f,,,%.1f,%.1f,,,,\n",
				r.Label, r.CycleMS, r.RadioRealMJ, r.RadioSimMJ, r.MCURealMJ, r.MCUSimMJ)
			continue
		}
		fmt.Fprintf(&b, "%s,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%.2f\n",
			r.Label, r.CycleMS,
			r.RadioRealMJ, r.RadioSimMJ, r.OursRadioMJ, r.AnalyticRadioMJ,
			r.MCURealMJ, r.MCUSimMJ, r.OursMCUMJ, r.AnalyticMCUMJ,
			r.RadioErrVsReal(), r.MCUErrVsReal())
	}
	return b.String()
}
