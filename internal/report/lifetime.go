package report

import (
	"fmt"
	"strings"

	"repro/internal/battery"
	"repro/internal/sim"
)

// NodeBattery pairs a node with its end-of-run battery summary.
type NodeBattery struct {
	Name   string
	Report *battery.Report
}

// RenderLifetime formats the battery outcome of a run: per-node residual
// charge, terminal voltage and degradation level, then the network-level
// lifetime figures. It returns "" when no node carries a battery, so
// callers can print it unconditionally.
func RenderLifetime(nodes []NodeBattery, firstDeath, networkLifetime sim.Time) string {
	have := false
	for _, n := range nodes {
		if n.Report != nil {
			have = true
			break
		}
	}
	if !have {
		return ""
	}
	var b strings.Builder
	b.WriteString("Battery:\n")
	for _, n := range nodes {
		rep := n.Report
		if rep == nil {
			continue
		}
		fmt.Fprintf(&b, "  %-8s soc %5.1f%%  %.2f V  level %-11s",
			n.Name, rep.SOC*100, rep.VoltageV, rep.LevelName)
		if rep.Died {
			fmt.Fprintf(&b, "  died at %v", rep.DiedAt)
		}
		b.WriteString("\n")
	}
	if firstDeath > 0 {
		fmt.Fprintf(&b, "  first death: %v\n", firstDeath)
	}
	if networkLifetime > 0 {
		fmt.Fprintf(&b, "  network lifetime (<50%% alive): %v\n", networkLifetime)
	}
	return b.String()
}
