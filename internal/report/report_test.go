package report

import (
	"math"
	"strings"
	"testing"
)

func sampleTable() TableReport {
	return TableReport{
		ID:      "table1",
		Caption: "test caption",
		Rows: []Comparison{
			{Label: "F=205Hz", CycleMS: 30,
				RadioRealMJ: 540.6, RadioSimMJ: 502.9, OursRadioMJ: 548.3, AnalyticRadioMJ: 544.0,
				MCURealMJ: 170.2, MCUSimMJ: 161.2, OursMCUMJ: 162.2, AnalyticMCUMJ: 161.0},
			{Label: "F=55Hz", CycleMS: 120,
				RadioRealMJ: 132.2, RadioSimMJ: 126.2, OursRadioMJ: 135.0, AnalyticRadioMJ: 134.0,
				MCURealMJ: 113.7, MCUSimMJ: 123.5, OursMCUMJ: 123.9, AnalyticMCUMJ: 123.0},
		},
	}
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestComparisonErrors(t *testing.T) {
	c := sampleTable().Rows[0]
	if !approxEq(c.RadioErrVsReal(), (548.3-540.6)/540.6*100, 1e-9) {
		t.Fatalf("RadioErrVsReal = %v", c.RadioErrVsReal())
	}
	if !approxEq(c.RadioErrVsSim(), (548.3-502.9)/502.9*100, 1e-9) {
		t.Fatalf("RadioErrVsSim = %v", c.RadioErrVsSim())
	}
	if !approxEq(c.MCUErrVsReal(), (162.2-170.2)/170.2*100, 1e-9) {
		t.Fatalf("MCUErrVsReal = %v", c.MCUErrVsReal())
	}
	zero := Comparison{}
	if !math.IsInf(zero.RadioErrVsReal(), 1) {
		t.Fatalf("zero reference should yield +Inf")
	}
}

func TestAverages(t *testing.T) {
	tab := sampleTable()
	wantRadio := (math.Abs(tab.Rows[0].RadioErrVsReal()) + math.Abs(tab.Rows[1].RadioErrVsReal())) / 2
	if !approxEq(tab.AvgAbsRadioErrVsReal(), wantRadio, 1e-9) {
		t.Fatalf("AvgAbsRadioErrVsReal = %v, want %v", tab.AvgAbsRadioErrVsReal(), wantRadio)
	}
	if empty := (TableReport{}); empty.AvgAbsMCUErrVsReal() != 0 {
		t.Fatalf("empty table average not zero")
	}
}

func TestRenderContainsEverything(t *testing.T) {
	out := sampleTable().Render()
	for _, want := range []string{"TABLE1", "test caption", "F=205Hz", "540.6", "548.3", "avg |err|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigure4(t *testing.T) {
	out := RenderFigure4([]Bar{
		{Label: "ECG streaming (30ms)", RadioMJ: 540.6, MCUMJ: 170.2},
		{Label: "Rpeak (120ms)", RadioMJ: 113.1, MCUMJ: 133.1},
	})
	if !strings.Contains(out, "FIGURE 4") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "energy saving: 65%") {
		t.Fatalf("missing the paper's 65%% headline:\n%s", out)
	}
	// The streaming bar must be visibly longer.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "R") <= strings.Count(lines[2], "R") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	out := sampleTable().RenderMarkdown()
	for _, want := range []string{"## Table1", "| F=205Hz | 30 ms |", "| 540.6 |",
		"Average \\|error\\| vs real"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// Column count: header and rows agree.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var header, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "| point") {
			header = l
		}
		if strings.HasPrefix(l, "| F=205Hz") {
			row = l
		}
	}
	if strings.Count(header, "|") != strings.Count(row, "|") {
		t.Fatalf("markdown column mismatch:\n%s\n%s", header, row)
	}
}

func TestRenderCSV(t *testing.T) {
	out := sampleTable().RenderCSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows", len(lines))
	}
	wantCols := strings.Count(lines[0], ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != wantCols {
			t.Fatalf("csv row %d column mismatch: %s", i, l)
		}
	}
	if !strings.HasPrefix(lines[1], "F=205Hz,30.0,540.6") {
		t.Fatalf("csv row content: %s", lines[1])
	}
}

func TestBarTotal(t *testing.T) {
	b := Bar{RadioMJ: 100, MCUMJ: 50}
	if b.Total() != 150 {
		t.Fatalf("Total = %v", b.Total())
	}
}

// TestPartialTableRendering: omitted rows keep the paper columns, drop
// out of the averages, and every render format marks the table partial
// without breaking its shape.
func TestPartialTableRendering(t *testing.T) {
	tab := TableReport{
		ID:      "table1",
		Caption: "partial demo",
		Rows: []Comparison{
			{Label: "ok", CycleMS: 30, RadioRealMJ: 100, RadioSimMJ: 100,
				MCURealMJ: 10, MCUSimMJ: 10, OursRadioMJ: 110, OursMCUMJ: 11},
			{Label: "gone", CycleMS: 60, RadioRealMJ: 50, RadioSimMJ: 50,
				MCURealMJ: 5, MCUSimMJ: 5, Omitted: "skipped: interrupted"},
		},
	}
	if !tab.Partial() || tab.OmittedRows() != 1 {
		t.Fatalf("Partial=%v OmittedRows=%d", tab.Partial(), tab.OmittedRows())
	}
	// Averages cover only the complete row: |110-100|/100 = 10%.
	if got := tab.AvgAbsRadioErrVsReal(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("avg radio err = %g, want 10 (omitted row leaked in)", got)
	}
	text := tab.Render()
	if !strings.Contains(text, "[PARTIAL: 1/2 rows omitted]") ||
		!strings.Contains(text, "(no result: skipped: interrupted)") ||
		!strings.Contains(text, "over 1 of 2 rows") {
		t.Fatalf("text render lacks partial annotations:\n%s", text)
	}
	md := tab.RenderMarkdown()
	if !strings.Contains(md, "| gone | 60 ms | — |") ||
		!strings.Contains(md, "Partial table: 1 of 2 rows omitted; gone (skipped: interrupted)") {
		t.Fatalf("markdown render lacks partial annotations:\n%s", md)
	}
	csv := tab.RenderCSV()
	if !strings.Contains(csv, "gone,60.0,50.0,50.0,,,5.0,5.0,,,,\n") {
		t.Fatalf("csv omitted row malformed:\n%s", csv)
	}
	for i, line := range strings.Split(strings.TrimSpace(csv), "\n") {
		if n := strings.Count(line, ","); n != 11 {
			t.Fatalf("csv line %d has %d commas, want 11: %q", i, n, line)
		}
	}
}

// TestAllRowsOmittedAveragesZero guards the mean against an empty
// complete-row set.
func TestAllRowsOmittedAveragesZero(t *testing.T) {
	tab := TableReport{Rows: []Comparison{{Label: "a", Omitted: "x"}}}
	if got := tab.AvgAbsRadioErrVsReal(); got != 0 {
		t.Fatalf("avg over zero complete rows = %g", got)
	}
}
