package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden render files")

// checkGolden compares a rendered string against its committed golden
// file byte-for-byte, rewriting it under -update. Renders feed documents
// (EXPERIMENTS.md, CLI output) verbatim, so even whitespace drift is a
// regression.
func checkGolden(t *testing.T, file, got string) {
	t.Helper()
	path := filepath.Join("testdata", file)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden files)", err)
	}
	if got != string(want) {
		t.Errorf("render drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenRenderMarkdown(t *testing.T) {
	checkGolden(t, "table.md.golden", sampleTable().RenderMarkdown())
}

func TestGoldenRenderCSV(t *testing.T) {
	checkGolden(t, "table.csv.golden", sampleTable().RenderCSV())
}

func TestGoldenRenderText(t *testing.T) {
	checkGolden(t, "table.txt.golden", sampleTable().Render())
}

// sampleResilience is a canned fault-injection outcome: one recovered
// crash, one unrecovered crash, a blackout and an interference burst —
// every branch RenderResilience distinguishes.
func sampleResilience() ([]NodeAvailability, []fault.Outcome, uint64) {
	nodes := []NodeAvailability{
		{Name: "node1", Availability: 0.82, DeliveryRatio: 0.97},
		{Name: "node2", Availability: 1.0, DeliveryRatio: 1.0},
	}
	outcomes := []fault.Outcome{
		{
			Fault:        fault.Fault{Kind: fault.KindCrash, Node: 1, At: 8 * sim.Second, RebootAfter: 2 * sim.Second},
			RebootedAt:   10 * sim.Second,
			Rejoined:     true,
			RejoinedAt:   10*sim.Second + 310*sim.Millisecond,
			TimeToRejoin: 310 * sim.Millisecond,
			SentDuring:   12, AckedDuring: 0,
		},
		{
			Fault: fault.Fault{Kind: fault.KindCrash, Node: 2, At: 15 * sim.Second},
		},
		{
			Fault:      fault.Fault{Kind: fault.KindBlackout, From: "node1", To: "bs", At: 5 * sim.Second, Until: 6 * sim.Second},
			SentDuring: 33, AckedDuring: 21,
		},
		{
			Fault:      fault.Fault{Kind: fault.KindInterference, At: 9 * sim.Second, Until: 9500 * sim.Millisecond},
			SentDuring: 16, AckedDuring: 4,
		},
	}
	return nodes, outcomes, 1
}

func TestGoldenRenderResilience(t *testing.T) {
	nodes, outcomes, reclaimed := sampleResilience()
	checkGolden(t, "resilience.txt.golden", RenderResilience(nodes, outcomes, reclaimed))
}

func TestRenderResilienceQuietWhenClean(t *testing.T) {
	nodes := []NodeAvailability{{Name: "node1", Availability: 1, DeliveryRatio: 1}}
	if out := RenderResilience(nodes, nil, 0); out != "" {
		t.Fatalf("fault-free full-availability run rendered %q, want silence", out)
	}
	// Partial availability must surface even without scheduled faults.
	nodes[0].Availability = 0.5
	if out := RenderResilience(nodes, nil, 0); out == "" {
		t.Fatal("degraded availability rendered nothing")
	}
}

// sampleSnapshot is a canned observability snapshot exercising every
// RenderMetrics section: states, losses, counters, histograms and a
// non-zero drop count.
func sampleSnapshot() *metrics.Snapshot {
	rec := metrics.NewRecorder(2)
	rec.Record(0, "bs", metrics.KindBeaconTx, "")
	rec.Record(10*sim.Millisecond, "node1", metrics.KindBeaconRx, "")
	rec.Record(12*sim.Millisecond, "node1", metrics.KindDataTx, "")
	rec.Observe("node1", metrics.HistSlotWait, 5*sim.Millisecond)
	rec.Observe("node1", metrics.HistSlotWait, 9*sim.Millisecond)
	rec.Observe("node1", metrics.HistTxToAck, 420*sim.Microsecond)
	s := metrics.Assemble(rec, nil, nil, []metrics.CounterRow{
		{Node: "node1", Name: "mac.data-sent", Value: 1},
	}, 12345)
	s.States = []metrics.StateRow{
		{Node: "node1", Component: "radio", State: "rx", Time: 1200 * sim.Millisecond, EnergyMJ: 83.4},
		{Node: "node1", Component: "radio", State: "standby", Time: 58800 * sim.Millisecond, EnergyMJ: 1.98},
		{Node: "node1", Component: "loss", State: "idle-listening", EnergyMJ: 12.7},
	}
	return s
}

func TestGoldenRenderMetrics(t *testing.T) {
	checkGolden(t, "metrics.txt.golden", RenderMetrics(sampleSnapshot()))
}

func TestRenderMetricsNil(t *testing.T) {
	if out := RenderMetrics(nil); out != "" {
		t.Fatalf("nil snapshot rendered %q", out)
	}
}

func TestGoldenSnapshotJSON(t *testing.T) {
	data, err := sampleSnapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json.golden", string(data)+"\n")
}
