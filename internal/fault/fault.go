// Package fault is the deterministic fault-injection subsystem: node
// crashes with optional reboot, link blackout windows and external
// interference bursts, all scheduled through the simulation kernel so a
// faulted run is exactly as reproducible as a clean one. Health-care
// BANs live on moving bodies with depleting batteries — nodes brown out,
// posture shadows links, and neighbouring equipment jams the ISM band —
// so the interesting engineering questions are about recovery: how long
// until a rebooted node holds a slot again, what delivery looked like
// through the outage, and whether the base station's schedule degrades
// gracefully. The Injector answers them per fault.
package fault

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Kind names a fault type.
//
//lint:exhaustive
type Kind string

const (
	// KindCrash powers a node off at an instant, losing all MAC, radio
	// and application state; an optional reboot cold-starts it later.
	KindCrash Kind = "crash"
	// KindBlackout shadows one directed link completely for a window
	// (body posture, walking around a corner).
	KindBlackout Kind = "blackout"
	// KindInterference corrupts every frame on the air for a window (an
	// external emitter saturating the 2.4 GHz band).
	KindInterference Kind = "interference"
	// KindBrownout marks an emergent battery-depletion crash: the node's
	// live battery (internal/battery) drained until the terminal voltage
	// fell through the brownout threshold. It is never scheduled —
	// ValidateSchedule rejects it in user fault lists — but appears in
	// Outcomes alongside the injected faults.
	KindBrownout Kind = "brownout"
)

// Fault describes one scheduled fault. The flat shape keeps the JSON
// scenario schema simple: which fields are meaningful depends on Kind.
type Fault struct {
	Kind Kind `json:"kind"`
	// Node is the crash target (crash only).
	Node uint8 `json:"node,omitempty"`
	// From and To name the shadowed directed path (blackout only):
	// "bs" or "node<N>".
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// At is the fault instant (window start), from simulation start.
	At sim.Time `json:"at"`
	// Until ends a blackout/interference window.
	Until sim.Time `json:"until,omitempty"`
	// RebootAfter is the crash outage length; 0 means the node never
	// comes back.
	RebootAfter sim.Time `json:"reboot_after,omitempty"`
}

// String renders the fault for error messages and logs.
func (f Fault) String() string {
	switch f.Kind {
	case KindCrash:
		if f.RebootAfter > 0 {
			return fmt.Sprintf("crash node%d@%v+%v", f.Node, f.At, f.RebootAfter)
		}
		return fmt.Sprintf("crash node%d@%v", f.Node, f.At)
	case KindBlackout:
		return fmt.Sprintf("blackout %s>%s@%v-%v", f.From, f.To, f.At, f.Until)
	case KindInterference:
		return fmt.Sprintf("interference@%v-%v", f.At, f.Until)
	case KindBrownout:
		return fmt.Sprintf("brownout node%d@%v", f.Node, f.At)
	default:
		return fmt.Sprintf("fault(%q)", string(f.Kind))
	}
}

var endpointRe = regexp.MustCompile(`^node([0-9]+)$`)

// validEndpoint reports whether name addresses the base station or one
// of the first n nodes.
func validEndpoint(name string, n int) bool {
	if name == "bs" {
		return true
	}
	m := endpointRe.FindStringSubmatch(name)
	if m == nil {
		return false
	}
	id, err := strconv.Atoi(m[1])
	return err == nil && id >= 1 && id <= n
}

// ValidateSchedule rejects fault schedules that cannot be executed:
// windows outside [0, total), references to nodes the scenario does not
// place, and overlapping crash intervals on one node (a node cannot
// crash while already down). nodes is the scenario's node count (IDs
// 1..nodes); total is the full simulated span including warmup.
func ValidateSchedule(faults []Fault, nodes int, total sim.Time) error {
	type span struct {
		from, to sim.Time // to == 0 means open-ended (never reboots)
	}
	crashes := make(map[uint8][]span)
	for i, f := range faults {
		if f.At < 0 || f.At >= total {
			return fmt.Errorf("fault %d (%v): at=%v outside the simulated span [0, %v)", i, f, f.At, total)
		}
		switch f.Kind {
		case KindCrash:
			if int(f.Node) < 1 || int(f.Node) > nodes {
				return fmt.Errorf("fault %d (%v): node %d not in scenario (1..%d)", i, f, f.Node, nodes)
			}
			if f.RebootAfter < 0 {
				return fmt.Errorf("fault %d (%v): negative reboot_after", i, f)
			}
			end := sim.Time(0)
			if f.RebootAfter > 0 {
				end = f.At + f.RebootAfter
				if end > total {
					return fmt.Errorf("fault %d (%v): reboot at %v is past the simulated span %v", i, f, end, total)
				}
			}
			crashes[f.Node] = append(crashes[f.Node], span{from: f.At, to: end})
		case KindBlackout:
			if !validEndpoint(f.From, nodes) {
				return fmt.Errorf("fault %d (%v): unknown endpoint %q", i, f, f.From)
			}
			if !validEndpoint(f.To, nodes) {
				return fmt.Errorf("fault %d (%v): unknown endpoint %q", i, f, f.To)
			}
			if f.From == f.To {
				return fmt.Errorf("fault %d (%v): blackout path endpoints are identical", i, f)
			}
			if f.Until <= f.At {
				return fmt.Errorf("fault %d (%v): window end %v not after start %v", i, f, f.Until, f.At)
			}
			if f.Until > total {
				return fmt.Errorf("fault %d (%v): window end %v past the simulated span %v", i, f, f.Until, total)
			}
		case KindInterference:
			if f.Until <= f.At {
				return fmt.Errorf("fault %d (%v): window end %v not after start %v", i, f, f.Until, f.At)
			}
			if f.Until > total {
				return fmt.Errorf("fault %d (%v): window end %v past the simulated span %v", i, f, f.Until, total)
			}
		case KindBrownout:
			return fmt.Errorf("fault %d (%v): brownouts are emergent (battery depletion), not schedulable — configure a battery instead", i, f)
		default:
			return fmt.Errorf("fault %d: unknown kind %q", i, f.Kind)
		}
	}
	// A second crash while a node is still down is meaningless; the
	// schedule is a user error, not a composable overlay.
	for node, spans := range crashes {
		sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })
		for i := 1; i < len(spans); i++ {
			prev := spans[i-1]
			if prev.to == 0 || spans[i].from < prev.to {
				return fmt.Errorf("node%d: crash at %v overlaps the outage starting at %v", node, spans[i].from, prev.from)
			}
		}
	}
	return nil
}

// NodeHooks is the injector's view of one sensor node.
type NodeHooks struct {
	// Crash and Reboot drive the node's power lifecycle.
	Crash  func()
	Reboot func()
	// OnJoined registers a callback fired on every completed join.
	OnJoined func(fn func())
	// Stats snapshots the node MAC's counters.
	Stats func() mac.Stats
}

// Outcome reports what one scheduled fault did to the network.
type Outcome struct {
	Fault Fault `json:"fault"`
	// RebootedAt is the cold-boot instant (crash with reboot only).
	RebootedAt sim.Time `json:"rebooted_at,omitempty"`
	// Rejoined reports whether the crashed node held a slot again before
	// the run ended.
	Rejoined bool `json:"rejoined,omitempty"`
	// RejoinedAt is the instant the rebooted node rejoined, and
	// TimeToRejoin the span from reboot to rejoin.
	RejoinedAt   sim.Time `json:"rejoined_at,omitempty"`
	TimeToRejoin sim.Time `json:"time_to_rejoin,omitempty"`
	// SentDuring and AckedDuring count data frames sent/acknowledged
	// inside the fault window (for a crash: from the crash until the
	// rejoin or the end of the run) by the affected node — or by the
	// whole network for an interference burst.
	SentDuring  uint64 `json:"sent_during"`
	AckedDuring uint64 `json:"acked_during"`
}

// DeliveryDuring reports the in-window delivery ratio (1 when nothing
// was sent: no frame was lost).
func (o Outcome) DeliveryDuring() float64 {
	if o.SentDuring == 0 {
		return 1
	}
	return float64(o.AckedDuring) / float64(o.SentDuring)
}

// satSub subtracts saturating at zero: a fault window that straddles the
// warmup-end accounting reset sees counters smaller than its snapshot.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// window tracks one open fault window's starting snapshot.
type window struct {
	idx   int
	node  uint8 // 0 = whole network (interference)
	sent  uint64
	acked uint64
}

// Injector schedules a validated fault list onto the kernel and collects
// per-fault outcomes. Build it with New, register every sensor with
// AddNode, then Install the schedule before the run starts.
type Injector struct {
	k      *sim.Kernel
	ch     *channel.Channel
	tracer *trace.Recorder

	nodes map[uint8]NodeHooks
	ids   []uint8 // sorted, for deterministic aggregate snapshots

	outcomes []Outcome
	// pendingRejoin maps a node to the outcome indices waiting for its
	// next join (at most one in a valid schedule, but the structure
	// tolerates sequential crash/reboot cycles).
	pendingRejoin map[uint8][]int
	// openCrash maps a node to its open crash window (closed on rejoin
	// or at Finalize).
	openCrash map[uint8]*window
	hooked    map[uint8]bool
}

// New creates an injector over the run's kernel, medium and tracer.
func New(k *sim.Kernel, ch *channel.Channel, tracer *trace.Recorder) *Injector {
	return &Injector{
		k:             k,
		ch:            ch,
		tracer:        tracer,
		nodes:         make(map[uint8]NodeHooks),
		pendingRejoin: make(map[uint8][]int),
		openCrash:     make(map[uint8]*window),
		hooked:        make(map[uint8]bool),
	}
}

// AddNode registers a sensor node's lifecycle hooks under its ID.
func (inj *Injector) AddNode(id uint8, h NodeHooks) {
	if _, dup := inj.nodes[id]; dup {
		panic(fmt.Sprintf("fault: duplicate node %d", id))
	}
	inj.nodes[id] = h
	inj.ids = append(inj.ids, id)
	sort.Slice(inj.ids, func(i, j int) bool { return inj.ids[i] < inj.ids[j] })
}

// aggregate sums data counters across every registered node.
func (inj *Injector) aggregate() (sent, acked uint64) {
	for _, id := range inj.ids {
		s := inj.nodes[id].Stats()
		sent += s.DataSent
		acked += s.DataAcked
	}
	return sent, acked
}

// Install validates nothing (run ValidateSchedule first) and schedules
// every fault onto the kernel. Call once, before the run starts.
func (inj *Injector) Install(faults []Fault) {
	inj.outcomes = make([]Outcome, len(faults))
	for i, f := range faults {
		inj.outcomes[i] = Outcome{Fault: f}
		switch f.Kind {
		case KindCrash:
			inj.installCrash(i, f)
		case KindBlackout:
			inj.installBlackout(i, f)
		case KindInterference:
			inj.installInterference(i, f)
		case KindBrownout:
			// Emergent only: ValidateSchedule rejects brownout entries,
			// so one arriving here means the schedule bypassed
			// validation — fail loudly instead of silently ignoring it.
			panic("fault: brownout faults are emergent, not schedulable; run ValidateSchedule")
		}
	}
}

func (inj *Injector) installCrash(idx int, f Fault) {
	h, ok := inj.nodes[f.Node]
	if !ok {
		panic(fmt.Sprintf("fault: crash targets unregistered node %d", f.Node))
	}
	// One rejoin watcher per node, however many crashes it suffers.
	if !inj.hooked[f.Node] {
		inj.hooked[f.Node] = true
		node := f.Node
		h.OnJoined(func() { inj.noteRejoin(node) })
	}
	inj.k.ScheduleAt(f.At, func(*sim.Kernel) {
		s := h.Stats()
		inj.openCrash[f.Node] = &window{idx: idx, node: f.Node, sent: s.DataSent, acked: s.DataAcked}
		h.Crash() // the MAC traces the crash event itself
	})
	if f.RebootAfter > 0 {
		node := f.Node
		inj.k.ScheduleAt(f.At+f.RebootAfter, func(*sim.Kernel) {
			inj.outcomes[idx].RebootedAt = inj.k.Now()
			inj.pendingRejoin[node] = append(inj.pendingRejoin[node], idx)
			inj.tracer.Recordf(inj.k.Now(), fmt.Sprintf("node%d", node), trace.KindReboot,
				"outage=%v", f.RebootAfter)
			h.Reboot()
		})
	}
}

// noteRejoin resolves the oldest pending rejoin wait for the node and
// closes its open crash window.
func (inj *Injector) noteRejoin(node uint8) {
	pend := inj.pendingRejoin[node]
	if len(pend) == 0 {
		return // an ordinary (re)join, not crash recovery
	}
	idx := pend[0]
	inj.pendingRejoin[node] = pend[1:]
	o := &inj.outcomes[idx]
	o.Rejoined = true
	o.RejoinedAt = inj.k.Now()
	o.TimeToRejoin = o.RejoinedAt - o.RebootedAt
	if w := inj.openCrash[node]; w != nil && w.idx == idx {
		s := inj.nodes[node].Stats()
		o.SentDuring = satSub(s.DataSent, w.sent)
		o.AckedDuring = satSub(s.DataAcked, w.acked)
		delete(inj.openCrash, node)
	}
}

func (inj *Injector) installBlackout(idx int, f Fault) {
	// Track the sensor endpoint of the path: its delivery suffers whether
	// the shadowed direction carries its data or the returning acks.
	var tracked uint8
	var h NodeHooks
	haveNode := false
	for _, name := range []string{f.From, f.To} {
		if m := endpointRe.FindStringSubmatch(name); m != nil {
			id, _ := strconv.Atoi(m[1])
			if hooks, ok := inj.nodes[uint8(id)]; ok {
				tracked, h, haveNode = uint8(id), hooks, true
				break
			}
		}
	}
	var w window
	inj.k.ScheduleAt(f.At, func(*sim.Kernel) {
		if haveNode {
			s := h.Stats()
			w = window{idx: idx, node: tracked, sent: s.DataSent, acked: s.DataAcked}
		}
		inj.ch.SetBlackout(f.From, f.To, true)
		inj.tracer.Recordf(inj.k.Now(), "channel", trace.KindLinkDown, "%s>%s", f.From, f.To)
	})
	inj.k.ScheduleAt(f.Until, func(*sim.Kernel) {
		inj.ch.SetBlackout(f.From, f.To, false)
		inj.tracer.Recordf(inj.k.Now(), "channel", trace.KindLinkUp, "%s>%s", f.From, f.To)
		if haveNode {
			s := h.Stats()
			inj.outcomes[idx].SentDuring = satSub(s.DataSent, w.sent)
			inj.outcomes[idx].AckedDuring = satSub(s.DataAcked, w.acked)
		}
	})
}

func (inj *Injector) installInterference(idx int, f Fault) {
	var sent0, acked0 uint64
	inj.k.ScheduleAt(f.At, func(*sim.Kernel) {
		sent0, acked0 = inj.aggregate()
		inj.ch.SetJamming(true)
		inj.tracer.Record(inj.k.Now(), "channel", trace.KindJamOn, "")
	})
	inj.k.ScheduleAt(f.Until, func(*sim.Kernel) {
		inj.ch.SetJamming(false)
		inj.tracer.Record(inj.k.Now(), "channel", trace.KindJamOff, "")
		sent, acked := inj.aggregate()
		inj.outcomes[idx].SentDuring = satSub(sent, sent0)
		inj.outcomes[idx].AckedDuring = satSub(acked, acked0)
	})
}

// NoteBrownout records an emergent battery-depletion crash as a fault
// outcome, so brownouts show up in the resilience report alongside the
// scheduled faults. The cell is empty, so the node never reboots and no
// in-window delivery is tracked — the outcome carries only the instant.
func (inj *Injector) NoteBrownout(node uint8) {
	inj.outcomes = append(inj.outcomes, Outcome{
		Fault: Fault{Kind: KindBrownout, Node: node, At: inj.k.Now()},
	})
}

// Finalize closes crash windows still open at the end of the run (the
// node never rejoined, or never rebooted at all) and returns the
// outcomes in schedule order.
func (inj *Injector) Finalize() []Outcome {
	for _, id := range inj.ids {
		w := inj.openCrash[id]
		if w == nil {
			continue
		}
		s := inj.nodes[id].Stats()
		inj.outcomes[w.idx].SentDuring = satSub(s.DataSent, w.sent)
		inj.outcomes[w.idx].AckedDuring = satSub(s.DataAcked, w.acked)
		delete(inj.openCrash, id)
	}
	return append([]Outcome(nil), inj.outcomes...)
}

// Outcomes returns the outcomes collected so far, in schedule order.
func (inj *Injector) Outcomes() []Outcome {
	return append([]Outcome(nil), inj.outcomes...)
}
