package fault

import (
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestValidateSchedule(t *testing.T) {
	total := 10 * sim.Second
	cases := []struct {
		name    string
		faults  []Fault
		wantErr string // "" = valid
	}{
		{"empty", nil, ""},
		{"crash ok", []Fault{
			{Kind: KindCrash, Node: 1, At: 2 * sim.Second, RebootAfter: sim.Second},
		}, ""},
		{"crash no reboot", []Fault{
			{Kind: KindCrash, Node: 3, At: 9 * sim.Second},
		}, ""},
		{"crash unknown node", []Fault{
			{Kind: KindCrash, Node: 4, At: sim.Second},
		}, "not in scenario"},
		{"crash node zero", []Fault{
			{Kind: KindCrash, Node: 0, At: sim.Second},
		}, "not in scenario"},
		{"crash past end", []Fault{
			{Kind: KindCrash, Node: 1, At: 10 * sim.Second},
		}, "outside the simulated span"},
		{"negative at", []Fault{
			{Kind: KindCrash, Node: 1, At: -sim.Second},
		}, "outside the simulated span"},
		{"reboot past end", []Fault{
			{Kind: KindCrash, Node: 1, At: 9 * sim.Second, RebootAfter: 2 * sim.Second},
		}, "past the simulated span"},
		{"negative reboot", []Fault{
			{Kind: KindCrash, Node: 1, At: sim.Second, RebootAfter: -sim.Second},
		}, "negative reboot_after"},
		{"overlapping crashes", []Fault{
			{Kind: KindCrash, Node: 1, At: 2 * sim.Second, RebootAfter: 3 * sim.Second},
			{Kind: KindCrash, Node: 1, At: 4 * sim.Second, RebootAfter: sim.Second},
		}, "overlaps"},
		{"crash after open-ended crash", []Fault{
			{Kind: KindCrash, Node: 1, At: 2 * sim.Second},
			{Kind: KindCrash, Node: 1, At: 8 * sim.Second},
		}, "overlaps"},
		{"sequential crashes ok", []Fault{
			{Kind: KindCrash, Node: 1, At: 2 * sim.Second, RebootAfter: sim.Second},
			{Kind: KindCrash, Node: 1, At: 5 * sim.Second, RebootAfter: sim.Second},
		}, ""},
		{"same-instant crashes on two nodes ok", []Fault{
			{Kind: KindCrash, Node: 1, At: 2 * sim.Second, RebootAfter: sim.Second},
			{Kind: KindCrash, Node: 2, At: 2 * sim.Second, RebootAfter: sim.Second},
		}, ""},
		{"blackout ok", []Fault{
			{Kind: KindBlackout, From: "node1", To: "bs", At: sim.Second, Until: 2 * sim.Second},
		}, ""},
		{"blackout unknown endpoint", []Fault{
			{Kind: KindBlackout, From: "node9", To: "bs", At: sim.Second, Until: 2 * sim.Second},
		}, "unknown endpoint"},
		{"blackout junk endpoint", []Fault{
			{Kind: KindBlackout, From: "gateway", To: "bs", At: sim.Second, Until: 2 * sim.Second},
		}, "unknown endpoint"},
		{"blackout self path", []Fault{
			{Kind: KindBlackout, From: "node1", To: "node1", At: sim.Second, Until: 2 * sim.Second},
		}, "identical"},
		{"blackout inverted window", []Fault{
			{Kind: KindBlackout, From: "node1", To: "bs", At: 2 * sim.Second, Until: sim.Second},
		}, "not after start"},
		{"blackout past end", []Fault{
			{Kind: KindBlackout, From: "node1", To: "bs", At: 9 * sim.Second, Until: 11 * sim.Second},
		}, "past the simulated span"},
		{"interference ok", []Fault{
			{Kind: KindInterference, At: sim.Second, Until: 2 * sim.Second},
		}, ""},
		{"interference empty window", []Fault{
			{Kind: KindInterference, At: sim.Second, Until: sim.Second},
		}, "not after start"},
		{"unknown kind", []Fault{
			{Kind: "meteor", At: sim.Second},
		}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSchedule(tc.faults, 3, total)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid schedule")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// stubNode is a minimal NodeHooks implementation that records lifecycle
// calls and lets the test fire joins by hand.
type stubNode struct {
	crashes int
	reboots int
	joined  []func()
	stats   mac.Stats
}

func (s *stubNode) hooks() NodeHooks {
	return NodeHooks{
		Crash:    func() { s.crashes++ },
		Reboot:   func() { s.reboots++ },
		OnJoined: func(fn func()) { s.joined = append(s.joined, fn) },
		Stats:    func() mac.Stats { return s.stats },
	}
}

func (s *stubNode) fireJoin() {
	for _, fn := range s.joined {
		fn()
	}
}

func TestInjectorCrashOutcome(t *testing.T) {
	k := sim.NewKernel(1)
	ch := channel.New(k)
	tracer := trace.New(0)
	inj := New(k, ch, tracer)
	n := &stubNode{}
	inj.AddNode(1, n.hooks())

	n.stats = mac.Stats{DataSent: 10, DataAcked: 10}
	inj.Install([]Fault{
		{Kind: KindCrash, Node: 1, At: 2 * sim.Second, RebootAfter: sim.Second},
	})
	// The node "sends" two unacked frames between crash and rejoin.
	k.ScheduleAt(3500*sim.Millisecond, func(*sim.Kernel) {
		n.stats.DataSent = 12
		n.fireJoin()
	})
	k.RunUntil(5 * sim.Second)

	if n.crashes != 1 || n.reboots != 1 {
		t.Fatalf("crashes=%d reboots=%d, want 1/1", n.crashes, n.reboots)
	}
	out := inj.Finalize()
	if len(out) != 1 {
		t.Fatalf("got %d outcomes, want 1", len(out))
	}
	o := out[0]
	if !o.Rejoined {
		t.Fatalf("outcome not marked rejoined: %+v", o)
	}
	if o.RebootedAt != 3*sim.Second {
		t.Fatalf("RebootedAt = %v, want 3s", o.RebootedAt)
	}
	if o.RejoinedAt != 3500*sim.Millisecond || o.TimeToRejoin != 500*sim.Millisecond {
		t.Fatalf("RejoinedAt=%v TimeToRejoin=%v, want 3.5s/500ms", o.RejoinedAt, o.TimeToRejoin)
	}
	if o.SentDuring != 2 || o.AckedDuring != 0 {
		t.Fatalf("SentDuring=%d AckedDuring=%d, want 2/0", o.SentDuring, o.AckedDuring)
	}
}

func TestInjectorCrashWithoutRejoin(t *testing.T) {
	k := sim.NewKernel(1)
	ch := channel.New(k)
	tracer := trace.New(0)
	inj := New(k, ch, tracer)
	n := &stubNode{}
	inj.AddNode(2, n.hooks())

	inj.Install([]Fault{{Kind: KindCrash, Node: 2, At: sim.Second}})
	k.RunUntil(4 * sim.Second)

	if n.crashes != 1 || n.reboots != 0 {
		t.Fatalf("crashes=%d reboots=%d, want 1/0", n.crashes, n.reboots)
	}
	o := inj.Finalize()[0]
	if o.Rejoined || o.RebootedAt != 0 {
		t.Fatalf("no-reboot crash reported recovery: %+v", o)
	}
}

// TestInjectorIgnoresOrdinaryJoins checks that a join with no pending
// reboot (the initial join, or a resync after missed beacons) does not
// get misattributed to a fault.
func TestInjectorIgnoresOrdinaryJoins(t *testing.T) {
	k := sim.NewKernel(1)
	ch := channel.New(k)
	tracer := trace.New(0)
	inj := New(k, ch, tracer)
	n := &stubNode{}
	inj.AddNode(1, n.hooks())
	inj.Install([]Fault{
		{Kind: KindCrash, Node: 1, At: 2 * sim.Second, RebootAfter: sim.Second},
	})
	// Initial join, long before the crash.
	k.ScheduleAt(100*sim.Millisecond, func(*sim.Kernel) { n.fireJoin() })
	k.RunUntil(2500 * sim.Millisecond) // crash happened, reboot not yet
	o := inj.Outcomes()[0]
	if o.Rejoined {
		t.Fatalf("pre-crash join was counted as crash recovery")
	}
}

func TestInjectorBlackoutTogglesChannel(t *testing.T) {
	k := sim.NewKernel(1)
	ch := channel.New(k)
	tracer := trace.New(0)
	inj := New(k, ch, tracer)
	n := &stubNode{}
	inj.AddNode(1, n.hooks())

	n.stats = mac.Stats{DataSent: 5, DataAcked: 5}
	inj.Install([]Fault{
		{Kind: KindBlackout, From: "node1", To: "bs", At: sim.Second, Until: 2 * sim.Second},
	})
	// Frames sent inside the window go unacked.
	k.ScheduleAt(1500*sim.Millisecond, func(*sim.Kernel) {
		n.stats.DataSent = 8
	})
	k.RunUntil(3 * sim.Second)
	o := inj.Finalize()[0]
	if o.SentDuring != 3 || o.AckedDuring != 0 {
		t.Fatalf("SentDuring=%d AckedDuring=%d, want 3/0", o.SentDuring, o.AckedDuring)
	}
	if o.DeliveryDuring() != 0 {
		t.Fatalf("DeliveryDuring = %v, want 0", o.DeliveryDuring())
	}
}

func TestInjectorTraceEvents(t *testing.T) {
	k := sim.NewKernel(1)
	ch := channel.New(k)
	tracer := trace.New(0)
	inj := New(k, ch, tracer)
	n := &stubNode{}
	inj.AddNode(1, n.hooks())
	inj.Install([]Fault{
		{Kind: KindBlackout, From: "node1", To: "bs", At: sim.Second, Until: 2 * sim.Second},
		{Kind: KindInterference, At: 3 * sim.Second, Until: 4 * sim.Second},
	})
	k.RunUntil(5 * sim.Second)
	rendered := tracer.Render()
	for _, want := range []string{"link-down", "link-up", "jam-on", "jam-off"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("trace missing %q:\n%s", want, rendered)
		}
	}
}
