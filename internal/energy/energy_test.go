package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func twoStateMeter() *Meter {
	return NewMeter("mcu", map[State]Draw{
		"active": {CurrentA: 2e-3, VoltageV: 2.8},
		"lpm":    {CurrentA: 0.66e-3, VoltageV: 2.8},
	})
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDrawPower(t *testing.T) {
	d := Draw{CurrentA: 2e-3, VoltageV: 2.8}
	if !approx(d.Power(), 5.6e-3, 1e-12) {
		t.Fatalf("Power = %v, want 5.6mW", d.Power())
	}
}

func TestMeterSimpleIntegration(t *testing.T) {
	m := twoStateMeter()
	m.Start(0, "lpm")
	m.Transition(10*sim.Second, "active") // 10s lpm
	m.Transition(20*sim.Second, "lpm")    // 10s active
	m.Flush(60 * sim.Second)              // 40s lpm

	if got := m.TimeIn("active"); got != 10*sim.Second {
		t.Fatalf("TimeIn(active) = %v, want 10s", got)
	}
	if got := m.TimeIn("lpm"); got != 50*sim.Second {
		t.Fatalf("TimeIn(lpm) = %v, want 50s", got)
	}
	// E = 5.6mW*10s + 1.848mW*50s = 56mJ + 92.4mJ = 148.4mJ
	if !approx(m.EnergyJ(), 0.1484, 1e-9) {
		t.Fatalf("EnergyJ = %v, want 0.1484", m.EnergyJ())
	}
	if !approx(m.EnergyInJ("active"), 0.056, 1e-9) {
		t.Fatalf("EnergyInJ(active) = %v", m.EnergyInJ("active"))
	}
}

func TestMeterSelfTransitionIsNoop(t *testing.T) {
	m := twoStateMeter()
	m.Start(0, "lpm")
	m.Transition(5*sim.Second, "lpm")
	m.Transition(5*sim.Second, "lpm")
	m.Flush(10 * sim.Second)
	if got := m.TimeIn("lpm"); got != 10*sim.Second {
		t.Fatalf("TimeIn(lpm) = %v, want 10s", got)
	}
}

func TestMeterPaperMicrocontrollerBaseline(t *testing.T) {
	// The paper's floor: MCU in power-save for the whole 60s window at
	// 0.66mA, 2.8V -> 110.88 mJ. This is the offset under every µC number
	// in Tables 1-4.
	m := twoStateMeter()
	m.Start(0, "lpm")
	m.Flush(60 * sim.Second)
	if !approx(m.EnergyJ()*1e3, 110.88, 1e-6) {
		t.Fatalf("60s LPM = %v mJ, want 110.88", m.EnergyJ()*1e3)
	}
}

func TestMeterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"transition before start", func() {
			twoStateMeter().Transition(0, "active")
		}},
		{"unknown initial state", func() {
			twoStateMeter().Start(0, "warp")
		}},
		{"unknown transition state", func() {
			m := twoStateMeter()
			m.Start(0, "lpm")
			m.Transition(1, "warp")
		}},
		{"time backwards", func() {
			m := twoStateMeter()
			m.Start(10, "lpm")
			m.Transition(5, "active")
		}},
		{"flush backwards", func() {
			m := twoStateMeter()
			m.Start(10, "lpm")
			m.Flush(5)
		}},
		{"double start", func() {
			m := twoStateMeter()
			m.Start(0, "lpm")
			m.Start(0, "lpm")
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

func TestFlushBeforeStartIsNoop(t *testing.T) {
	m := twoStateMeter()
	m.Flush(10 * sim.Second) // must not panic
	if m.EnergyJ() != 0 {
		t.Fatalf("unstarted meter accumulated energy")
	}
}

// Property: residence times always sum to the full metered window, no
// matter the transition pattern (time conservation).
func TestQuickTimeConservation(t *testing.T) {
	f := func(steps []uint16, states []bool) bool {
		m := twoStateMeter()
		m.Start(0, "lpm")
		now := sim.Time(0)
		for i, d := range steps {
			now += sim.Time(d) * sim.Microsecond
			s := State("lpm")
			if i < len(states) && states[i] {
				s = "active"
			}
			m.Transition(now, s)
		}
		now += sim.Millisecond
		m.Flush(now)
		return m.TotalTime() == now
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is monotone non-decreasing in time and never negative.
func TestQuickEnergyMonotone(t *testing.T) {
	f := func(steps []uint16) bool {
		m := twoStateMeter()
		m.Start(0, "active")
		now := sim.Time(0)
		prev := 0.0
		for i, d := range steps {
			now += sim.Time(d) * sim.Microsecond
			if i%2 == 0 {
				m.Transition(now, "lpm")
			} else {
				m.Transition(now, "active")
			}
			m.Flush(now)
			e := m.EnergyJ()
			if e < prev-1e-15 || e < 0 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerAggregation(t *testing.T) {
	l := NewLedger()
	mcu := twoStateMeter()
	radio := NewMeter("radio", map[State]Draw{
		"rx":  {CurrentA: 24.82e-3, VoltageV: 2.8},
		"tx":  {CurrentA: 17.54e-3, VoltageV: 2.8},
		"off": {},
	})
	l.Register(mcu)
	l.Register(radio)

	mcu.Start(0, "active")
	radio.Start(0, "off")
	radio.Transition(1*sim.Second, "rx")
	radio.Transition(2*sim.Second, "off")
	l.Flush(10 * sim.Second)

	wantMCU := 5.6e-3 * 10
	wantRadio := 24.82e-3 * 2.8 * 1
	if !approx(l.TotalJ(), wantMCU+wantRadio, 1e-9) {
		t.Fatalf("TotalJ = %v, want %v", l.TotalJ(), wantMCU+wantRadio)
	}

	r := l.Report()
	if len(r.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(r.Components))
	}
	if r.Components[0].Name != "mcu" || r.Components[1].Name != "radio" {
		t.Fatalf("report order not registration order: %v, %v",
			r.Components[0].Name, r.Components[1].Name)
	}
	cr, ok := r.Component("radio")
	if !ok {
		t.Fatalf("radio missing from report")
	}
	if !approx(cr.EnergyJ, wantRadio, 1e-9) {
		t.Fatalf("radio energy = %v, want %v", cr.EnergyJ, wantRadio)
	}
	if !approx(r.TotalMJ(), (wantMCU+wantRadio)*1e3, 1e-6) {
		t.Fatalf("TotalMJ = %v", r.TotalMJ())
	}
	if _, ok := r.Component("nope"); ok {
		t.Fatalf("unknown component reported present")
	}
}

func TestLedgerDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration did not panic")
		}
	}()
	l := NewLedger()
	l.Register(twoStateMeter())
	l.Register(twoStateMeter())
}

func TestLedgerLossAttribution(t *testing.T) {
	l := NewLedger()
	l.AttributeLoss(LossCollision, 0.5e-3)
	l.AttributeLoss(LossCollision, 0.25e-3)
	l.AttributeLoss(LossOverhearing, 1e-3)
	if !approx(l.Loss(LossCollision), 0.75e-3, 1e-12) {
		t.Fatalf("collision loss = %v", l.Loss(LossCollision))
	}
	if l.Loss(LossIdleListening) != 0 {
		t.Fatalf("unattributed category nonzero")
	}
	r := l.Report()
	if !approx(r.Losses[LossOverhearing], 1e-3, 1e-12) {
		t.Fatalf("report losses = %v", r.Losses)
	}
}

func TestLedgerNegativeLossPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative loss did not panic")
		}
	}()
	NewLedger().AttributeLoss(LossControl, -1)
}

func TestAllLossCategories(t *testing.T) {
	cats := AllLossCategories()
	if len(cats) != 4 {
		t.Fatalf("want the paper's 4 loss categories, got %d", len(cats))
	}
	seen := map[LossCategory]bool{}
	for _, c := range cats {
		if seen[c] {
			t.Fatalf("duplicate category %q", c)
		}
		seen[c] = true
	}
}

func TestMeterStatesSorted(t *testing.T) {
	m := NewMeter("r", map[State]Draw{"tx": {}, "off": {}, "rx": {}})
	states := m.States()
	want := []State{"off", "rx", "tx"}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("States() = %v, want %v", states, want)
		}
	}
}

func TestLedgerMeterLookup(t *testing.T) {
	l := NewLedger()
	m := twoStateMeter()
	l.Register(m)
	if l.Meter("mcu") != m {
		t.Fatalf("Meter lookup failed")
	}
	if l.Meter("ghost") != nil {
		t.Fatalf("unknown meter lookup should return nil")
	}
}

func TestReportEnergyMJ(t *testing.T) {
	cr := ComponentReport{EnergyJ: 0.5406}
	if !approx(cr.EnergyMJ(), 540.6, 1e-9) {
		t.Fatalf("EnergyMJ = %v, want 540.6", cr.EnergyMJ())
	}
}
