// Package energy implements the per-component, per-state energy accounting
// at the core of the paper's estimation model.
//
// The model is the one stated in §4.1 of the paper: E = I·Vdd·t, where t is
// the residence time of a component in each of its power states. A Meter
// tracks one component's state machine against virtual time; a Ledger
// aggregates the meters of one node and additionally attributes radio
// energy to the loss categories the paper enumerates in §4.2 (collisions,
// idle listening, overhearing, control packet overhead).
package energy

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// State names one power state of a component ("active", "lpm", "rx", ...).
type State string

// Draw describes the electrical operating point of one state.
type Draw struct {
	CurrentA float64 // current drawn in this state, amperes
	VoltageV float64 // supply voltage in this state, volts
}

// Power reports the state's power draw in watts.
func (d Draw) Power() float64 { return d.CurrentA * d.VoltageV }

// Meter tracks the power-state residency of a single component. The meter
// integrates energy lazily: it records the instant of the last transition
// and charges the elapsed interval to the outgoing state when the next
// transition (or a Flush) occurs.
type Meter struct {
	name    string
	draws   map[State]Draw
	state   State
	since   sim.Time
	timeIn  map[State]sim.Time
	started bool
}

// NewMeter creates a meter for a component with the given state table.
// Call Start before the first transition.
func NewMeter(name string, draws map[State]Draw) *Meter {
	cp := make(map[State]Draw, len(draws))
	for s, d := range draws {
		cp[s] = d
	}
	return &Meter{
		name:   name,
		draws:  cp,
		timeIn: make(map[State]sim.Time),
	}
}

// Name reports the component name the meter was created with.
func (m *Meter) Name() string { return m.name }

// Start begins metering at instant now in the given initial state.
func (m *Meter) Start(now sim.Time, initial State) {
	if m.started {
		panic(fmt.Sprintf("energy: meter %q started twice", m.name))
	}
	m.mustKnow(initial)
	m.state = initial
	m.since = now
	m.started = true
}

// Transition moves the component into next at instant now, charging the
// elapsed interval to the outgoing state. Transitioning to the current
// state is a no-op (but still legal, so callers need not special-case it).
func (m *Meter) Transition(now sim.Time, next State) {
	if !m.started {
		panic(fmt.Sprintf("energy: meter %q used before Start", m.name))
	}
	m.mustKnow(next)
	if now < m.since {
		panic(fmt.Sprintf("energy: meter %q time went backwards (%v -> %v)", m.name, m.since, now))
	}
	if next == m.state {
		return
	}
	m.timeIn[m.state] += now - m.since
	m.state = next
	m.since = now
}

// State reports the component's current power state.
func (m *Meter) State() State {
	return m.state
}

// Flush charges the interval since the last transition to the current
// state, up to instant now, without changing state. Call it once at the
// end of a run before reading totals.
func (m *Meter) Flush(now sim.Time) {
	if !m.started {
		return
	}
	if now < m.since {
		panic(fmt.Sprintf("energy: meter %q flush time went backwards", m.name))
	}
	m.timeIn[m.state] += now - m.since
	m.since = now
}

// TimeIn reports the accumulated residence time in state s (after the
// last Flush or Transition).
func (m *Meter) TimeIn(s State) sim.Time { return m.timeIn[s] }

// Reset zeroes the accumulated residencies and restarts integration at
// instant now in the current state. Used after simulation warm-up so a
// measurement window covers steady state only.
func (m *Meter) Reset(now sim.Time) {
	if !m.started {
		return
	}
	if now < m.since {
		panic(fmt.Sprintf("energy: meter %q reset time went backwards", m.name))
	}
	m.timeIn = make(map[State]sim.Time)
	m.since = now
}

// EnergyJ reports the total energy in joules accumulated across all
// states, E = sum_s I_s·V_s·t_s. The sum runs over the sorted state
// list: float addition is not associative, so summing in map order
// would let the iteration order leak into the last bits of the total
// and break exact run-to-run invariance.
func (m *Meter) EnergyJ() float64 {
	var e float64
	for _, s := range m.States() {
		e += m.draws[s].Power() * m.timeIn[s].Seconds()
	}
	return e
}

// EnergyInJ reports the energy accumulated in one state.
func (m *Meter) EnergyInJ(s State) float64 {
	return m.draws[s].Power() * m.timeIn[s].Seconds()
}

// States reports the meter's known states in sorted order.
func (m *Meter) States() []State {
	out := make([]State, 0, len(m.draws))
	for s := range m.draws {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalTime reports the sum of residence times over all states.
func (m *Meter) TotalTime() sim.Time {
	var t sim.Time
	for _, d := range m.timeIn {
		t += d
	}
	return t
}

func (m *Meter) mustKnow(s State) {
	if _, ok := m.draws[s]; !ok {
		panic(fmt.Sprintf("energy: meter %q has no state %q", m.name, s))
	}
}

// LossCategory labels radio energy that the paper's §4.2 classifies as a
// distinct waste mechanism. Useful energy (delivering the node's own data)
// is not a loss category.
type LossCategory string

const (
	// LossCollision is energy spent on transmissions or receptions that
	// were corrupted by a concurrent transmission.
	LossCollision LossCategory = "collision"
	// LossIdleListening is energy spent with the receiver on while no
	// frame addressed to anyone was on the air.
	LossIdleListening LossCategory = "idle-listening"
	// LossOverhearing is energy spent receiving frames addressed to a
	// different node (discarded by the nRF2401 address filter).
	LossOverhearing LossCategory = "overhearing"
	// LossControl is energy spent sending/receiving control frames
	// (beacons, slot requests, grants, acks) rather than data.
	LossControl LossCategory = "control-overhead"
)

// AllLossCategories lists the categories in report order.
func AllLossCategories() []LossCategory {
	return []LossCategory{LossCollision, LossIdleListening, LossOverhearing, LossControl}
}

// Ledger aggregates the meters of one node plus loss-category attribution.
type Ledger struct {
	meters map[string]*Meter
	order  []string
	losses map[LossCategory]float64
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		meters: make(map[string]*Meter),
		losses: make(map[LossCategory]float64),
	}
}

// Register adds a meter to the ledger. Component names must be unique.
func (l *Ledger) Register(m *Meter) {
	if _, dup := l.meters[m.Name()]; dup {
		panic(fmt.Sprintf("energy: duplicate meter %q", m.Name()))
	}
	l.meters[m.Name()] = m
	l.order = append(l.order, m.Name())
}

// Meter returns the registered meter with the given name, or nil.
func (l *Ledger) Meter(name string) *Meter { return l.meters[name] }

// AttributeLoss charges joules of already-metered energy to a loss
// category. This is attribution, not additional energy: the joules were
// integrated by a meter; the category records *why* they were spent.
func (l *Ledger) AttributeLoss(c LossCategory, joules float64) {
	if joules < 0 {
		panic("energy: negative loss attribution")
	}
	l.losses[c] += joules
}

// Loss reports the energy attributed to a category, in joules.
func (l *Ledger) Loss(c LossCategory) float64 { return l.losses[c] }

// Flush flushes every registered meter at instant now.
func (l *Ledger) Flush(now sim.Time) {
	for _, m := range l.meters {
		m.Flush(now)
	}
}

// Reset zeroes every meter and all loss attributions, restarting
// integration at instant now.
func (l *Ledger) Reset(now sim.Time) {
	for _, m := range l.meters {
		m.Reset(now)
	}
	l.losses = make(map[LossCategory]float64)
}

// TotalJ reports the node's total energy across all components, summed
// in registration order so the float total is bit-identical run to run
// (map iteration order must not reach a float accumulation).
func (l *Ledger) TotalJ() float64 {
	var e float64
	for _, name := range l.order {
		e += l.meters[name].EnergyJ()
	}
	return e
}

// Report snapshots the ledger into a plain-data Report.
func (l *Ledger) Report() Report {
	r := Report{
		Components: make([]ComponentReport, 0, len(l.order)),
		Losses:     make(map[LossCategory]float64, len(l.losses)),
	}
	for _, name := range l.order {
		m := l.meters[name]
		cr := ComponentReport{Name: name, States: map[State]StateReport{}}
		for _, s := range m.States() {
			cr.States[s] = StateReport{Time: m.TimeIn(s), EnergyJ: m.EnergyInJ(s)}
			cr.EnergyJ += m.EnergyInJ(s)
		}
		r.Components = append(r.Components, cr)
		r.TotalJ += cr.EnergyJ
	}
	for c, j := range l.losses {
		r.Losses[c] = j
	}
	return r
}

// StateReport is the per-state slice of a component report.
type StateReport struct {
	Time    sim.Time
	EnergyJ float64
}

// ComponentReport is the per-component slice of a node energy report.
type ComponentReport struct {
	Name    string
	EnergyJ float64
	States  map[State]StateReport
}

// EnergyMJ reports the component total in millijoules, the unit used in
// the paper's tables.
func (c ComponentReport) EnergyMJ() float64 { return c.EnergyJ * 1e3 }

// Report is a plain-data snapshot of a node's energy accounting.
type Report struct {
	Components []ComponentReport
	TotalJ     float64
	Losses     map[LossCategory]float64
}

// Component returns the report for the named component (zero value if
// absent) and whether it was found.
func (r Report) Component(name string) (ComponentReport, bool) {
	for _, c := range r.Components {
		if c.Name == name {
			return c, true
		}
	}
	return ComponentReport{}, false
}

// TotalMJ reports the node total in millijoules.
func (r Report) TotalMJ() float64 { return r.TotalJ * 1e3 }
