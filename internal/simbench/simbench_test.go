package simbench

import (
	"testing"

	"repro/internal/sim"
)

// TestReferenceDeterministicAcrossSchedulers pins the property cmd/bench
// leans on: the reference workload does exactly the same work on both
// schedulers, so a snapshot's event count is comparable across kernels
// and across runs.
func TestReferenceDeterministicAcrossSchedulers(t *testing.T) {
	cfg := Reference()
	cfg.Duration = 5 * sim.Second // keep the unit test quick
	wheel := Run(sim.NewKernel(1), cfg)
	heap := Run(sim.NewHeapKernel(1), cfg)
	if wheel != heap {
		t.Fatalf("workload diverges across schedulers:\nwheel: %+v\nheap:  %+v", wheel, heap)
	}
	if wheel.Timeouts != 0 {
		t.Fatalf("%d ack timeouts fired; every ack should cancel its timeout", wheel.Timeouts)
	}
	if wheel.Executed == 0 || wheel.Fired == 0 || wheel.Cancels == 0 {
		t.Fatalf("degenerate workload: %+v", wheel)
	}
	// Repeat runs must be bit-identical (pure function of Config).
	if again := Run(sim.NewKernel(1), cfg); again != wheel {
		t.Fatalf("workload not reproducible: %+v vs %+v", again, wheel)
	}
}

// TestReferenceExercisesPool checks the shapes the workload claims to
// cover actually hit the wheel: pool reuse bounded by peak concurrency
// and far-future watchdogs pending at the horizon (spill residents).
func TestReferenceExercisesPool(t *testing.T) {
	cfg := Reference()
	cfg.Duration = 5 * sim.Second
	k := sim.NewKernel(1)
	res := Run(k, cfg)
	st := k.PoolStats()
	if st.Capacity > 256 {
		t.Fatalf("pool grew to %d slots; workload should reach steady state", st.Capacity)
	}
	if st.Allocated < res.Fired {
		t.Fatalf("allocated %d < fired %d", st.Allocated, res.Fired)
	}
	// One watchdog per node stays armed 10 minutes out.
	if got := k.Pending(); got != cfg.Nodes {
		t.Fatalf("pending at horizon = %d, want %d watchdogs", got, cfg.Nodes)
	}
}

// TestCSMAReference pins the contention-shaped workload: CCA hops in
// proportion to the bursts, identical results on both schedulers and
// across reruns, and the TDMA shape untouched by the extension.
func TestCSMAReference(t *testing.T) {
	cfg := CSMAReference()
	cfg.Duration = 5 * sim.Second
	wheel := Run(sim.NewKernel(1), cfg)
	heap := Run(sim.NewHeapKernel(1), cfg)
	if wheel != heap {
		t.Fatalf("workload diverges across schedulers:\nwheel: %+v\nheap:  %+v", wheel, heap)
	}
	if wheel.CCASamples == 0 {
		t.Fatalf("contention shape performed no channel assessments: %+v", wheel)
	}
	if wheel.Timeouts != 0 {
		t.Fatalf("%d ack timeouts fired; every ack should cancel its timeout", wheel.Timeouts)
	}
	if again := Run(sim.NewKernel(1), cfg); again != wheel {
		t.Fatalf("workload not reproducible: %+v vs %+v", again, wheel)
	}

	tdma := Reference()
	tdma.Duration = 5 * sim.Second
	if res := Run(sim.NewKernel(1), tdma); res.CCASamples != 0 {
		t.Fatalf("TDMA shape performed %d channel assessments", res.CCASamples)
	}
}
