// Package simbench defines the fixed reference workload behind the
// committed BENCH_<pr>.json trajectory (see README "Performance"): a
// TDMA-shaped kernel-only scenario that exercises every scheduler path
// the real models hit — periodic sampling timers, per-cycle slot events,
// same-instant beacon batches, schedule+cancel ack-timeout round trips
// and far-future watchdogs that live in the wheel's overflow spill.
//
// The workload is a pure function of its Config: no wall clock, no
// randomness, handlers pre-bound so the kernel's own cost dominates.
// cmd/bench runs it on both schedulers (wheel and the retained heap
// reference) and snapshots events/sec, ns/event and allocs/event.
package simbench

import "repro/internal/sim"

// Config shapes the workload. All fields must be positive.
type Config struct {
	// Nodes is the BAN size: one slot, one sampler, one watchdog each.
	Nodes int
	// Cycle is the TDMA cycle; each cycle costs every node a beacon
	// event, a slot event, an ack, a cancelled ack timeout and a
	// watchdog re-arm.
	Cycle sim.Time
	// SampleEvery is the sampling-timer period (ECG-like).
	SampleEvery sim.Time
	// Duration is the simulated horizon.
	Duration sim.Time
	// CCAPerBurst, when positive, reshapes each data burst into a
	// contention access: the transmission is preceded by this many
	// clear-channel-assessment events chained one backoff period apart
	// (the slotted CSMA/CA shape — short schedule/fire hops instead of
	// the TDMA slot's single event).
	CCAPerBurst int
}

// Reference is the fixed configuration the committed snapshots use:
// an 8-node BAN at the paper's 30 ms cycle and 205 Hz sampling, run
// for 60 virtual seconds (the paper's measurement window).
func Reference() Config {
	return Config{
		Nodes:       8,
		Cycle:       30 * sim.Millisecond,
		SampleEvery: sim.Time(int64(sim.Second) / 205),
		Duration:    60 * sim.Second,
	}
}

// CSMAReference is the contention-shaped companion to Reference: the
// same BAN geometry, but every data burst walks a three-step CCA chain
// first, the way the slotted CSMA/CA MAC drives the kernel with short
// backoff-period hops.
func CSMAReference() Config {
	cfg := Reference()
	cfg.CCAPerBurst = 3
	return cfg
}

// backoffUnit spaces the CCA chain: the 802.15.4 aUnitBackoffPeriod at
// 250 kbit/s.
const backoffUnit = 320 * sim.Microsecond

// Result reports what the workload did, for determinism checks.
type Result struct {
	// Executed is the kernel's own count of dispatched events.
	Executed uint64
	// Fired counts handler-level firings the workload observed.
	Fired uint64
	// Timeouts counts ack timeouts that fired (must be 0: every ack
	// arrives before its timeout and cancels it).
	Timeouts uint64
	// Cancels counts successful cancellations (timeouts + watchdog
	// re-arms).
	Cancels uint64
	// CCASamples counts clear-channel-assessment hops (contention
	// configs only; 0 for the TDMA shape).
	CCASamples uint64
}

// benchNode is one sensor node's event machinery, with handlers bound
// once at construction so steady-state scheduling allocates nothing.
type benchNode struct {
	k    *sim.Kernel
	cfg  Config
	res  *Result
	end  sim.Time
	slot sim.Time // offset of this node's data slot within the cycle

	ackID      sim.EventID
	watchdogID sim.EventID
	ccaLeft    int

	onSample   sim.Handler
	onBeacon   sim.Handler
	onSlot     sim.Handler
	onCCA      sim.Handler
	onAck      sim.Handler
	onTimeout  sim.Handler
	onWatchdog sim.Handler
}

func newBenchNode(k *sim.Kernel, cfg Config, id int, res *Result) *benchNode {
	n := &benchNode{k: k, cfg: cfg, res: res, end: cfg.Duration,
		slot: cfg.Cycle * sim.Time(id+1) / sim.Time(cfg.Nodes+2)}
	n.onSample = n.sample
	n.onBeacon = n.beacon
	n.onSlot = n.slotTx
	n.onCCA = n.cca
	n.onAck = n.ack
	n.onTimeout = n.timeout
	n.onWatchdog = n.watchdog
	return n
}

// sample is the periodic ADC tick.
func (n *benchNode) sample(k *sim.Kernel) {
	n.res.Fired++
	if next := k.Now() + n.cfg.SampleEvery; next < n.end {
		k.ScheduleAt(next, n.onSample)
	}
}

// beacon is this node's share of the same-instant cycle-boundary batch;
// it arms the node's data slot for this cycle.
func (n *benchNode) beacon(k *sim.Kernel) {
	n.res.Fired++
	if at := k.Now() + n.slot; at < n.end {
		k.ScheduleAt(at, n.onSlot)
	}
}

// slotTx opens this cycle's transmission opportunity: the TDMA shape
// bursts immediately, the contention shape walks the CCA chain first.
func (n *benchNode) slotTx(k *sim.Kernel) {
	n.res.Fired++
	if n.cfg.CCAPerBurst > 0 {
		n.ccaLeft = n.cfg.CCAPerBurst
		k.Schedule(backoffUnit, n.onCCA)
		return
	}
	n.burst(k)
}

// cca is one clear-channel-assessment hop of the contention chain.
func (n *benchNode) cca(k *sim.Kernel) {
	n.res.Fired++
	n.res.CCASamples++
	if n.ccaLeft--; n.ccaLeft > 0 {
		k.Schedule(backoffUnit, n.onCCA)
		return
	}
	n.burst(k)
}

// burst is the data transmission: it starts an ack timeout, the ack
// that will beat it, and re-arms the far-future sync watchdog (a
// cancel+schedule pair that keeps one event per node in the overflow
// spill, the way a lost-beacon deadline does).
func (n *benchNode) burst(k *sim.Kernel) {
	n.ackID = k.Schedule(2*sim.Millisecond, n.onTimeout)
	k.Schedule(sim.Millisecond, n.onAck)
	if n.watchdogID != 0 && k.Cancel(n.watchdogID) {
		n.res.Cancels++
	}
	n.watchdogID = k.Schedule(10*sim.Minute, n.onWatchdog)
}

// ack arrives before the timeout and cancels it.
func (n *benchNode) ack(k *sim.Kernel) {
	n.res.Fired++
	if k.Cancel(n.ackID) {
		n.res.Cancels++
	}
}

func (n *benchNode) timeout(*sim.Kernel) { n.res.Fired++; n.res.Timeouts++ }

func (n *benchNode) watchdog(*sim.Kernel) { n.res.Fired++ }

// Run drives the workload on the given kernel until cfg.Duration and
// reports what happened. The kernel must be fresh.
func Run(k *sim.Kernel, cfg Config) Result {
	var res Result
	nodes := make([]*benchNode, cfg.Nodes)
	for i := range nodes {
		nodes[i] = newBenchNode(k, cfg, i, &res)
		// Stagger sampling phases like unsynchronised ADCs.
		k.ScheduleAt(sim.Time(i)*cfg.SampleEvery/sim.Time(cfg.Nodes), nodes[i].onSample)
	}
	// The base station's beacon fans out one same-instant event per
	// node at every cycle boundary — the TDMA batch shape.
	var beaconTick sim.Handler
	beaconTick = func(k *sim.Kernel) {
		res.Fired++
		for _, n := range nodes {
			k.ScheduleAt(k.Now(), n.onBeacon)
		}
		if next := k.Now() + cfg.Cycle; next < cfg.Duration {
			k.ScheduleAt(next, beaconTick)
		}
	}
	k.ScheduleAt(0, beaconTick)
	k.RunUntil(cfg.Duration)
	res.Executed = k.Executed()
	return res
}
