# Developer and CI entry points. `make` (or `make ci`) is the gate every
# change must pass: vet, build, the full test suite, and a race-detector
# pass over the packages that host or feed the parallel experiment
# runner.

GO ?= go

.PHONY: ci vet build test race bench fuzz sweep-demo

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runner executes many simulations concurrently; the kernel, core
# façade and runner itself must stay race-clean under the detector, and
# so must everything the fault injector reaches into mid-run (MAC state
# machines and the shared medium).
race:
	$(GO) test -race ./internal/runner ./internal/sim ./internal/core \
		./internal/fault ./internal/mac ./internal/channel

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Continuous fuzzing of the scenario JSON loader (bounded for CI use;
# raise -fuzztime locally).
fuzz:
	$(GO) test -run xxx -fuzz FuzzLoadScenario -fuzztime 30s ./internal/core

# Quick eyeball check of the parallel sweep path.
sweep-demo:
	$(GO) run ./cmd/sweep -mode cycle -duration 5s -progress
