# Developer and CI entry points. `make` (or `make ci`) is the gate every
# change must pass: vet, build, the full test suite, and a race-detector
# pass over the packages that host or feed the parallel experiment
# runner.

GO ?= go

.PHONY: ci vet build test race cover bench fuzz sweep-demo

ci: vet build test race cover

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runner executes many simulations concurrently; the kernel, core
# façade and runner itself must stay race-clean under the detector, and
# so must everything the fault injector reaches into mid-run (MAC state
# machines and the shared medium).
race:
	$(GO) test -race ./internal/runner ./internal/sim ./internal/core \
		./internal/fault ./internal/mac ./internal/channel

# Statement-coverage floors for the packages carrying the model's
# correctness weight (set just under their current levels; raise them as
# coverage grows, never lower them to make a change pass).
COVER_FLOORS = internal/core:78 internal/mac:88 internal/metrics:75

cover:
	@for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./$$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage line for ./$$pkg (tests failed?)"; exit 1; fi; \
		echo "cover: ./$$pkg $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit !(p+0 >= f+0) }' || \
			{ echo "cover: ./$$pkg fell below its $$floor% floor"; exit 1; }; \
	done

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Continuous fuzzing of the scenario JSON loader (bounded for CI use;
# raise -fuzztime locally).
fuzz:
	$(GO) test -run xxx -fuzz FuzzLoadScenario -fuzztime 30s ./internal/core

# Quick eyeball check of the parallel sweep path.
sweep-demo:
	$(GO) run ./cmd/sweep -mode cycle -duration 5s -progress
