# Developer and CI entry points. `make` (or `make ci`) is the gate every
# change must pass: vet, the external linters (when installed), the
# repo's own analyzer suite (banlint), build, the full test suite, a
# race-detector pass, and the coverage floors.

GO ?= go

.PHONY: ci vet lint banlint lint-fixtures build test race cover cover-lint mactest bench bench-snapshot bench-check soak resume-check fuzz sweep-demo

ci: vet lint banlint lint-fixtures build test race cover cover-lint mactest bench-check soak resume-check

vet:
	$(GO) vet ./...

# External linters. The container this runs in may not have them; skip
# with a loud warning rather than failing so `make ci` works offline.
# gofmt ships with the toolchain, so it always runs — and fails on any
# unformatted file.
lint:
	@unformatted=$$(gofmt -l . | grep -v '/testdata/' || true); \
	if [ -n "$$unformatted" ]; then \
		echo "lint: gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi; \
	echo "lint: gofmt clean"
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... || exit 1; \
	else \
		echo "lint: WARNING: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || exit 1; \
	else \
		echo "lint: WARNING: govulncheck not installed, skipping"; \
	fi

# The repo's own go/analysis-style suite (cmd/banlint): determinism,
# fault-safety and unit-hygiene invariants the generic linters cannot
# know about, now including the whole-program call-graph passes
# (nodetaint, hotalloc, exhaustcap). Zero unsuppressed diagnostics is
# the bar; waive a finding only with an in-source
# `//lint:allow <analyzer> <reason>` comment. The run carries a timing
# budget: the source-only loader plus call graph must stay interactive,
# so a pass over the whole module exceeding BANLINT_BUDGET_S seconds
# fails CI even when it finds nothing.
BANLINT_BUDGET_S = 60

banlint:
	@start=$$(date +%s); \
	$(GO) run ./cmd/banlint ./... || exit 1; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "banlint: completed in $${elapsed}s (budget $(BANLINT_BUDGET_S)s)"; \
	if [ $$elapsed -gt $(BANLINT_BUDGET_S) ]; then \
		echo "banlint: exceeded the $(BANLINT_BUDGET_S)s timing budget"; exit 1; \
	fi

# The analyzer suite's own test corpus: call-graph unit tests, waiver
# regression fixtures and the analysistest golden packages under
# internal/lint/*/testdata. `make test` includes these; this target runs
# them alone for analyzer work.
lint-fixtures:
	$(GO) test ./internal/lint/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runner executes many simulations concurrently and the fault
# injector reaches into MAC state machines mid-run; keep the whole tree
# race-clean, not just the packages that were racy once.
race:
	$(GO) test -race ./...

# Statement-coverage floors for the packages carrying the model's
# correctness weight (set just under their current levels; raise them as
# coverage grows, never lower them to make a change pass).
COVER_FLOORS = internal/core:78 internal/mac:88 internal/metrics:75 \
	internal/fault:90 internal/runner:95 internal/battery:90

cover:
	@for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		out=$$($(GO) test -cover ./$$pkg) || { echo "cover: tests failed in ./$$pkg"; echo "$$out"; exit 1; }; \
		case "$$out" in \
		*"[no test files]"*) echo "cover: ./$$pkg has a floor but no test files"; exit 1;; \
		esac; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage line for ./$$pkg:"; echo "$$out"; exit 1; fi; \
		echo "cover: ./$$pkg $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit !(p+0 >= f+0) }' || \
			{ echo "cover: ./$$pkg fell below its $$floor% floor"; exit 1; }; \
	done

# Aggregate statement-coverage floor for the analyzer layer: the suite
# is the thing standing between the simulation cone and nondeterminism,
# so its own tests must exercise it thoroughly. Measured as one merged
# profile across every internal/lint package (the per-package numbers
# vary — the driver and fixtures pull each other's code).
LINT_COVER_FLOOR = 85

cover-lint:
	@profile=$$(mktemp); \
	$(GO) test -coverprofile=$$profile -coverpkg=./internal/lint/... ./internal/lint/... >/dev/null || \
		{ echo "cover-lint: tests failed"; rm -f $$profile; exit 1; }; \
	pct=$$($(GO) tool cover -func=$$profile | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	rm -f $$profile; \
	if [ -z "$$pct" ]; then echo "cover-lint: no total coverage line"; exit 1; fi; \
	echo "cover-lint: internal/lint aggregate $$pct% (floor $(LINT_COVER_FLOOR)%)"; \
	awk -v p="$$pct" -v f="$(LINT_COVER_FLOOR)" 'BEGIN { exit !(p+0 >= f+0) }' || \
		{ echo "cover-lint: internal/lint fell below its $(LINT_COVER_FLOOR)% floor"; exit 1; }

# The MAC conformance kit (DESIGN.md section 14): every registered
# protocol must pass join convergence, the audit laws, fault resilience,
# the degradation cascade, determinism and worker invariance, plus the
# cross-protocol differential property. `make test` already includes it;
# this target runs it alone, verbosely, for MAC work.
mactest:
	$(GO) test -v -run TestConformance ./internal/mac/mactest

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The committed kernel-performance trajectory (README "Performance"):
# BENCH_<pr>.json snapshots the simbench reference workload on both
# schedulers. bench-check is the CI gate — it reruns the workload and
# fails on a >25% ns/event regression, an allocs/event excursion, or a
# changed event count. When a PR intentionally moves the numbers (or
# changes the workload), refresh the snapshot in the same commit:
#
#     make bench-snapshot          # the "-update" flow
#
BENCH_SNAPSHOT = BENCH_10.json

bench-snapshot:
	$(GO) run ./cmd/bench -out $(BENCH_SNAPSHOT)

bench-check:
	$(GO) run ./cmd/bench -check $(BENCH_SNAPSHOT)

# The chaos soak corpus (README "Auditing & soak testing"): 64 fixed
# seeds, each a randomized scenario run on both schedulers with every
# runtime invariant audited plus the wheel-vs-heap differential oracle.
# On failure cmd/soak shrinks the scenario to a minimal reproducer
# (soak_repro_<seed>.json) and exits non-zero. The corpus is pinned —
# same seeds every run — so CI is deterministic; rotate it by bumping
# SOAK_START (e.g. to the PR number times 1000) when the fixed range has
# been mined out, and widen it locally with SOAK_SEEDS for deeper runs.
SOAK_SEEDS = 64
SOAK_START = 1

soak:
	$(GO) run ./cmd/soak -seeds $(SOAK_SEEDS) -start $(SOAK_START) -budget 30s -q

# The resilience acceptance test (DESIGN.md section 16): a journaled
# sweep killed mid-batch and resumed with -resume must emit CSV
# byte-identical to the same sweep run uninterrupted. It builds and
# drives the real sweep binary, so it runs as its own gate rather than
# hiding inside `make test` timing.
resume-check:
	$(GO) test -v -run TestKillResumeRoundTrip ./cmd/sweep

# Continuous fuzzing of the scenario JSON loader (bounded for CI use;
# raise -fuzztime locally).
fuzz:
	$(GO) test -run xxx -fuzz FuzzLoadScenario -fuzztime 30s ./internal/core

# Quick eyeball check of the parallel sweep path.
sweep-demo:
	$(GO) run ./cmd/sweep -mode cycle -duration 5s -progress
